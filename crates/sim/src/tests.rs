//! End-to-end simulator tests: every accelerator run is validated against
//! the reference interpreter, and first-order timing behaviours are
//! checked (pipelining, serialization, banking, tiling, contention).

use crate::{
    simulate, ChannelState, ExecMode, FaultClass, FaultKind, FaultPlan, FaultSpec, SchedulerKind,
    SimConfig, SimError,
};
use muir_core::accel::Accelerator;
use muir_core::structure::StructureKind;
use muir_frontend::{translate, FrontendConfig};
use muir_mir::builder::FunctionBuilder;
use muir_mir::instr::{CmpPred, TensorOp, ValueRef};
use muir_mir::interp::{Interp, Memory};
use muir_mir::module::Module;
use muir_mir::types::{ScalarType, TensorShape, Type};
use muir_mir::value::Value;

fn run_both(m: &Module, inits: &[(muir_mir::instr::MemObjId, Vec<i64>)]) -> (Memory, Memory, u64) {
    let acc = translate(m, &FrontendConfig::default()).expect("translate");
    run_both_on(&acc, m, inits)
}

fn run_both_on(
    acc: &Accelerator,
    m: &Module,
    inits: &[(muir_mir::instr::MemObjId, Vec<i64>)],
) -> (Memory, Memory, u64) {
    let mut ref_mem = Memory::from_module(m);
    let mut sim_mem = Memory::from_module(m);
    for (obj, data) in inits {
        ref_mem.init_i64(*obj, data);
        sim_mem.init_i64(*obj, data);
    }
    Interp::new(m).run_main(&mut ref_mem, &[]).expect("interp");
    let r = simulate(acc, &mut sim_mem, &[], &SimConfig::default()).expect("simulate");
    (ref_mem, sim_mem, r.cycles)
}

fn assert_mem_eq(m: &Module, a: &Memory, b: &Memory) {
    for (i, (oa, ob)) in a.objects.iter().zip(&b.objects).enumerate() {
        assert_eq!(oa, ob, "object {} ({}) differs", i, m.mem_objects[i].name);
    }
}

#[test]
fn straightline_region_matches_interp() {
    let mut m = Module::new("sl");
    let a = m.add_mem_object("a", ScalarType::I32, 8);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    let v = b.load(a, ValueRef::int(0));
    let w = b.add(v, ValueRef::int(41));
    b.store(a, ValueRef::int(1), w);
    b.ret(None);
    m.add_function(b.finish());
    let (r, s, cycles) = run_both(&m, &[(a, vec![1, 0, 0, 0, 0, 0, 0, 0])]);
    assert_mem_eq(&m, &r, &s);
    assert!(cycles > 0 && cycles < 200, "tiny program: {cycles} cycles");
}

#[test]
fn loop_matches_interp() {
    let mut m = Module::new("scale");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        let v = b.load(a, i);
        let w = b.mul(v, ValueRef::int(3));
        b.store(a, i, w);
    });
    b.ret(None);
    m.add_function(b.finish());
    let init: Vec<i64> = (0..64).collect();
    let (r, s, cycles) = run_both(&m, &[(a, init)]);
    assert_mem_eq(&m, &r, &s);
    // 64 pipelined iterations: should take far less than 64 × pipeline
    // depth, but more than 64 cycles.
    assert!(cycles > 64, "{cycles}");
    assert!(cycles < 64 * 20, "pipelining failed: {cycles} cycles");
}

#[test]
fn accumulator_loop_matches_interp() {
    let mut m = Module::new("sum");
    let a = m.add_mem_object("a", ScalarType::I32, 32);
    let out = m.add_mem_object("out", ScalarType::I32, 1);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    let accs = b.for_loop_acc(
        ValueRef::int(0),
        ValueRef::int(32),
        1,
        &[(ValueRef::int(0), Type::I64)],
        |b, i, accs| {
            let v = b.load(a, i);
            vec![b.add(accs[0], v)]
        },
    );
    b.store(out, ValueRef::int(0), accs[0]);
    b.ret(None);
    m.add_function(b.finish());
    let init: Vec<i64> = (1..=32).collect();
    let (r, s, _) = run_both(&m, &[(a, init)]);
    assert_mem_eq(&m, &r, &s);
    assert_eq!(s.read_i64(out)[0], 528);
}

#[test]
fn nested_loops_match_interp() {
    let mut m = Module::new("mat");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(8), 1, |b, i| {
        let base = b.mul(i, ValueRef::int(8));
        b.for_loop(0, ValueRef::int(8), 1, |b, j| {
            let idx = b.add(base, j);
            let v = b.load(a, idx);
            let w = b.add(v, idx);
            b.store(a, idx, w);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let (r, s, _) = run_both(&m, &[(a, vec![5; 64])]);
    assert_mem_eq(&m, &r, &s);
}

#[test]
fn par_for_matches_interp() {
    let mut m = Module::new("cilk");
    let a = m.add_mem_object("a", ScalarType::I32, 32);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.par_for(0, 32, 1, |b, i| {
        let sq = b.mul(i, i);
        b.store(a, i, sq);
    });
    b.ret(None);
    m.add_function(b.finish());
    let (r, s, _) = run_both(&m, &[]);
    assert_mem_eq(&m, &r, &s);
    let out = s.read_i64(a);
    assert_eq!(out[5], 25);
}

#[test]
fn predicated_branch_matches_interp() {
    let mut m = Module::new("cond");
    let a = m.add_mem_object("a", ScalarType::I32, 32);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(32), 1, |b, i| {
        let r = b.rem(i, ValueRef::int(2));
        let is_even = b.icmp(CmpPred::Eq, r, ValueRef::int(0));
        let v = b.if_val(
            is_even,
            &[Type::I64],
            |b| vec![b.mul(ValueRef::Instr(i.as_instr().unwrap()), ValueRef::int(10))],
            |_| vec![ValueRef::int(-1)],
        );
        b.store(a, i, v[0]);
    });
    b.ret(None);
    m.add_function(b.finish());
    let (r, s, _) = run_both(&m, &[]);
    assert_mem_eq(&m, &r, &s);
    let out = s.read_i64(a);
    assert_eq!(out[4], 40);
    assert_eq!(out[5], -1);
}

#[test]
fn predicated_store_skips() {
    let mut m = Module::new("pstore");
    let a = m.add_mem_object("a", ScalarType::I32, 16);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(16), 1, |b, i| {
        let c = b.icmp(CmpPred::Lt, i, ValueRef::int(8));
        b.if_then(c, |b| {
            b.store(a, i, ValueRef::int(7));
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let (r, s, _) = run_both(&m, &[]);
    assert_mem_eq(&m, &r, &s);
    let out = s.read_i64(a);
    assert_eq!(out[0], 7);
    assert_eq!(out[15], 0);
}

#[test]
fn serial_loop_is_slower_than_parallel() {
    // Same body, one with a memory-carried dependence (serializes), one
    // without.
    let build = |carried: bool| -> Module {
        let mut m = Module::new("dep");
        let a = m.add_mem_object("a", ScalarType::I32, 128);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(64), 1, |b, i| {
            let idx = if carried { ValueRef::int(0) } else { i };
            let v = b.load(a, idx);
            let w = b.add(v, ValueRef::int(1));
            b.store(a, idx, w);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    };
    let m1 = build(true);
    let m2 = build(false);
    let (_, _, serial_cycles) = run_both(&m1, &[]);
    let (_, _, parallel_cycles) = run_both(&m2, &[]);
    assert!(
        serial_cycles > parallel_cycles * 2,
        "serial {serial_cycles} vs parallel {parallel_cycles}"
    );
}

#[test]
fn tensor_tiles_match_interp() {
    let shape = TensorShape::new(2, 2);
    let mut m = Module::new("tmm");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let bb = m.add_mem_object("b", ScalarType::I32, 64);
    let c = m.add_mem_object("c", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(16), 1, |b, i| {
        let idx = b.mul(i, ValueRef::int(4));
        let ta = b.load_tile(a, idx, shape);
        let tb = b.load_tile(bb, idx, shape);
        let tm = b.tensor2(TensorOp::MatMul, shape, ta, tb);
        b.store(c, idx, tm);
    });
    b.ret(None);
    m.add_function(b.finish());
    let ia: Vec<i64> = (0..64).collect();
    let ib: Vec<i64> = (0..64).map(|x| x % 7).collect();
    let (r, s, _) = run_both(&m, &[(a, ia), (bb, ib)]);
    assert_mem_eq(&m, &r, &s);
}

#[test]
fn function_call_matches_interp() {
    let mut m = Module::new("fn");
    let a = m.add_mem_object("a", ScalarType::I32, 4);
    let mut callee = FunctionBuilder::new("sq", &[Type::I64]).returns(Type::I64);
    let v = callee.mul(callee.arg(0), callee.arg(0));
    callee.ret(Some(v));
    let mut main = FunctionBuilder::new("main", &[]).with_mem(&m);
    let r = main.call(
        muir_mir::instr::FuncId(1),
        &[ValueRef::int(9)],
        Some(Type::I64),
    );
    main.store(a, ValueRef::int(0), r);
    main.ret(None);
    m.add_function(main.finish());
    m.add_function(callee.finish());
    let (r, s, _) = run_both(&m, &[]);
    assert_mem_eq(&m, &r, &s);
    assert_eq!(s.read_i64(a)[0], 81);
}

#[test]
fn sequential_dependent_loops_ordered() {
    // Loop 2 reads what loop 1 wrote: the Order edge must serialize them.
    let mut m = Module::new("seq");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let c = m.add_mem_object("c", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        let w = b.mul(i, ValueRef::int(2));
        b.store(a, i, w);
    });
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        let v = b.load(a, i);
        let w = b.add(v, ValueRef::int(100));
        b.store(c, i, w);
    });
    b.ret(None);
    m.add_function(b.finish());
    let (r, s, _) = run_both(&m, &[]);
    assert_mem_eq(&m, &r, &s);
    assert_eq!(s.read_i64(c)[10], 120);
}

#[test]
fn more_tiles_speed_up_cilk_loop() {
    let build = || {
        let mut m = Module::new("tiles");
        let a = m.add_mem_object("a", ScalarType::I32, 256);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.par_for(0, 64, 1, |b, i| {
            // A moderately deep body so tile-level parallelism matters.
            let x1 = b.mul(i, i);
            let x2 = b.mul(x1, ValueRef::int(3));
            let x3 = b.add(x2, ValueRef::int(11));
            let x4 = b.mul(x3, x1);
            b.store(a, i, x4);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    };
    let m = build();
    let acc1 = translate(&m, &FrontendConfig::default()).unwrap();
    let mut acc4 = acc1.clone();
    // Replicate the spawned region task 4×.
    for t in acc4.task_ids().collect::<Vec<_>>() {
        if matches!(acc4.task(t).kind, muir_core::accel::TaskKind::Region) && t != acc4.root {
            acc4.task_mut(t).tiles = 4;
            acc4.task_mut(t).queue_depth = 8;
        }
    }
    let (_, _, c1) = run_both_on(&acc1, &m, &[]);
    let (r, s, c4) = run_both_on(&acc4, &m, &[]);
    assert_mem_eq(&m, &r, &s);
    assert!(c4 < c1, "tiling should speed up: 1T={c1} 4T={c4}");
}

#[test]
fn banking_speeds_up_tensor_streams() {
    let shape = TensorShape::new(2, 2);
    let build = || {
        let mut m = Module::new("bank");
        let a = m.add_mem_object("a", ScalarType::I32, 256);
        let c = m.add_mem_object("c", ScalarType::I32, 256);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(64), 1, |b, i| {
            let idx = b.mul(i, ValueRef::int(4));
            let t = b.load_tile(a, idx, shape);
            let u = b.tensor2(TensorOp::Add, shape, t, t);
            b.store(c, idx, u);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    };
    let m = build();
    let acc1 = translate(&m, &FrontendConfig::default()).unwrap();
    let mut acc4 = acc1.clone();
    for s in acc4.structure_ids().collect::<Vec<_>>() {
        if let StructureKind::Scratchpad { banks, .. } = &mut acc4.structure_mut(s).kind {
            *banks = 4;
        }
    }
    let (_, _, c1) = run_both_on(&acc1, &m, &[]);
    let (r, s, c4) = run_both_on(&acc4, &m, &[]);
    assert_mem_eq(&m, &r, &s);
    assert!(
        c4 < c1,
        "banking should speed up tile streams: 1B={c1} 4B={c4}"
    );
}

#[test]
fn zero_trip_loop_returns_init() {
    let mut m = Module::new("zero");
    let out = m.add_mem_object("out", ScalarType::I32, 1);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    let accs = b.for_loop_acc(
        ValueRef::int(0),
        ValueRef::int(0), // zero iterations
        1,
        &[(ValueRef::int(42), Type::I64)],
        |b, i, accs| vec![b.add(accs[0], i)],
    );
    b.store(out, ValueRef::int(0), accs[0]);
    b.ret(None);
    m.add_function(b.finish());
    let (r, s, _) = run_both(&m, &[]);
    assert_mem_eq(&m, &r, &s);
    assert_eq!(s.read_i64(out)[0], 42);
}

#[test]
fn cache_structures_record_hits_and_misses() {
    let mut m = Module::new("cachey");
    // Large object → cache-homed.
    let a = m.add_mem_object("a", ScalarType::I32, 1 << 16);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(256), 1, |b, i| {
        let v = b.load(a, i);
        let w = b.add(v, ValueRef::int(1));
        b.store(a, i, w);
    });
    b.ret(None);
    m.add_function(b.finish());
    let acc = translate(&m, &FrontendConfig::default()).unwrap();
    let mut mem = Memory::from_module(&m);
    let r = simulate(&acc, &mut mem, &[], &SimConfig::default()).unwrap();
    assert!(r.stats.cache_misses() > 0, "cold cache must miss");
    assert!(
        r.stats.cache_hits() > r.stats.cache_misses(),
        "line reuse must hit"
    );
    assert!(r.stats.dram_fills > 0);
}

#[test]
fn stats_are_populated() {
    let mut m = Module::new("stats");
    let a = m.add_mem_object("a", ScalarType::I32, 16);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(16), 1, |b, i| {
        b.store(a, i, i);
    });
    b.ret(None);
    m.add_function(b.finish());
    let acc = translate(&m, &FrontendConfig::default()).unwrap();
    let mut mem = Memory::from_module(&m);
    let r = simulate(&acc, &mut mem, &[], &SimConfig::default()).unwrap();
    assert!(r.stats.fires > 16);
    assert_eq!(r.stats.task_invocations.iter().sum::<u64>(), 2); // root + loop
    assert_eq!(r.stats.task_invocations.len(), acc.tasks.len());
}

#[test]
fn dynamic_bound_via_args() {
    let mut m = Module::new("dyn");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[Type::I64]).with_mem(&m);
    let n = b.arg(0);
    b.for_loop(0, n, 1, |b, i| {
        b.store(a, i, i);
    });
    b.ret(None);
    m.add_function(b.finish());
    let acc = translate(&m, &FrontendConfig::default()).unwrap();
    let mut mem = Memory::from_module(&m);
    let mut ref_mem = Memory::from_module(&m);
    Interp::new(&m)
        .run_main(&mut ref_mem, &[Value::Int(10)])
        .unwrap();
    simulate(&acc, &mut mem, &[Value::Int(10)], &SimConfig::default()).unwrap();
    assert_eq!(ref_mem.objects, mem.objects);
    assert_eq!(mem.read_i64(a)[9], 9);
    assert_eq!(mem.read_i64(a)[10], 0);
}

#[test]
fn vector_loads_and_stores_work() {
    // The polymorphic Vector type: 4-lane loads/stores through the databox.
    let mut m = Module::new("vec");
    let a = m.add_ro_mem_object("a", ScalarType::I32, 64);
    let c = m.add_mem_object("c", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(16), 1, |b, i| {
        let idx = b.mul(i, ValueRef::int(4));
        let v = b.load_vec(a, idx, 4);
        b.store(c, idx, v);
    });
    b.ret(None);
    m.add_function(b.finish());
    let init: Vec<i64> = (0..64).map(|x| x * 3).collect();
    let (r, s, _) = run_both(&m, &[(a, init.clone())]);
    assert_mem_eq(&m, &r, &s);
    assert_eq!(s.read_i64(c), init);
}

#[test]
fn cycle_limit_is_enforced() {
    let mut m = Module::new("limit");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        b.store(a, i, i);
    });
    b.ret(None);
    m.add_function(b.finish());
    let acc = translate(&m, &FrontendConfig::default()).unwrap();
    let mut mem = Memory::from_module(&m);
    let cfg = SimConfig {
        max_cycles: 10,
        ..SimConfig::default()
    };
    let e = simulate(&acc, &mut mem, &[], &cfg).unwrap_err();
    assert!(
        matches!(e, SimError::CycleLimitExhausted { limit: 10 }),
        "{e}"
    );
    assert_eq!(e.code(), "E-SIM-LIMIT");
    assert!(e.to_string().contains("cycle limit"), "{e}");
}

#[test]
fn corrupted_graph_is_rejected_up_front() {
    // Remove the loop task's Output in-edge source token path by cutting
    // the store's address edge: the instance can never complete.
    let mut m = Module::new("dead");
    let a = m.add_mem_object("a", ScalarType::I32, 8);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(8), 1, |b, i| {
        b.store(a, i, i);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
    // Cut one data edge feeding the store in the loop task.
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    let df = &mut acc.task_mut(lp).dataflow;
    let store = df
        .node_ids()
        .find(|&n| matches!(df.node(n).kind, muir_core::node::NodeKind::Store { .. }))
        .unwrap();
    let pos = df.edges.iter().position(|e| e.dst == store).unwrap();
    df.edges.remove(pos);
    let mut mem = Memory::from_module(&m);
    let cfg = SimConfig {
        deadlock_cycles: 500,
        ..SimConfig::default()
    };
    let e = simulate(&acc, &mut mem, &[], &cfg).unwrap_err();
    // The up-front structural check rejects the corrupted graph cleanly.
    assert!(matches!(e, SimError::GraphRejected { .. }), "{e}");
    assert_eq!(e.code(), "E-SIM-GRAPH");
    assert!(e.to_string().contains("graph rejected"), "{e}");
    assert!(e.to_string().contains("unconnected"), "{e}");
}

#[test]
fn narrow_window_serializes_iterations() {
    let mut m = Module::new("win");
    let a = m.add_ro_mem_object("a", ScalarType::F32, 128);
    let c = m.add_mem_object("c", ScalarType::F32, 128);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(128), 1, |b, i| {
        let v = b.load(a, i);
        let w = b.fmul(v, ValueRef::f32(2.0));
        b.store(c, i, w);
    });
    b.ret(None);
    m.add_function(b.finish());
    let acc = translate(&m, &FrontendConfig::default()).unwrap();
    let run = |window: u64| {
        let mut mem = Memory::from_module(&m);
        let cfg = SimConfig {
            window,
            ..SimConfig::default()
        };
        simulate(&acc, &mut mem, &[], &cfg).unwrap().cycles
    };
    let narrow = run(1);
    let wide = run(64);
    assert!(narrow > 2 * wide, "window=1 {narrow} vs window=64 {wide}");
}

#[test]
fn task_busy_cycles_track_occupancy() {
    let mut m = Module::new("occ");
    let a = m.add_mem_object("a", ScalarType::I32, 32);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(32), 1, |b, i| {
        b.store(a, i, i);
    });
    b.ret(None);
    m.add_function(b.finish());
    let acc = translate(&m, &FrontendConfig::default()).unwrap();
    let mut mem = Memory::from_module(&m);
    let r = simulate(&acc, &mut mem, &[], &SimConfig::default()).unwrap();
    // The loop task is busy for most of the run; the root the whole run.
    let busy = &r.stats.task_busy_cycles;
    assert_eq!(busy.len(), acc.tasks.len());
    assert!(busy.iter().any(|&c| c > 32));
    assert!(busy.iter().sum::<u64>() <= r.cycles * acc.tasks.len() as u64 * 2);
}

#[test]
fn order_cycle_deadlock_is_detected() {
    // A structurally valid graph whose Order edges form a cycle can never
    // make progress; the watchdog must report it with diagnostics.
    let mut m = Module::new("ouro");
    let a = m.add_mem_object("a", ScalarType::I32, 8);
    let c = m.add_mem_object("c", ScalarType::I32, 8);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(4), 1, |b, i| {
        b.store(a, i, i);
        b.store(c, i, i);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    let df = &mut acc.task_mut(lp).dataflow;
    let stores: Vec<_> = df.mem_nodes();
    assert!(stores.len() >= 2);
    // Mutual ordering: each store waits for the other's completion.
    df.connect_order(stores[0], stores[1]);
    df.connect_order(stores[1], stores[0]);
    let mut mem = Memory::from_module(&m);
    let cfg = SimConfig {
        deadlock_cycles: 2_000,
        ..SimConfig::default()
    };
    let e = simulate(&acc, &mut mem, &[], &cfg).unwrap_err();
    let SimError::Deadlock { report, .. } = &e else {
        panic!("want Deadlock, got {e}")
    };
    // The two mutually-ordered stores wait on each other's (empty) order
    // edges: the wait-for walk must find that cycle.
    assert!(!report.wait_cycle.is_empty(), "wait-for cycle found: {e}");
    assert!(
        report
            .wait_cycle
            .iter()
            .all(|w| w.state == ChannelState::Empty),
        "{e}"
    );
    // An all-empty cycle is a graph bug, not a sizing bug: no buffer bump
    // can fix it, so no suggestion is offered.
    assert!(report.suggestion.is_none(), "{e}");
    assert!(e.to_string().contains("deadlock"), "{e}");
    assert!(
        e.to_string().contains("admitted"),
        "diagnostic names stuck tiles: {e}"
    );
}

// ---------------------------------------------------------------------------
// Fault injection & deadlock diagnosis
// ---------------------------------------------------------------------------

/// A small loop workload (a[i] += 3 over 32 elements) used by the fault
/// tests, plus its fault-free reference result.
fn fault_workload() -> (Module, muir_mir::instr::MemObjId, Vec<i64>) {
    let mut m = Module::new("fw");
    let a = m.add_mem_object("a", ScalarType::I32, 32);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(32), 1, |b, i| {
        let v = b.load(a, i);
        let w = b.add(v, ValueRef::int(3));
        b.store(a, i, w);
    });
    b.ret(None);
    m.add_function(b.finish());
    let init: Vec<i64> = (0..32).map(|x| x * 2).collect();
    let mut ref_mem = Memory::from_module(&m);
    ref_mem.init_i64(a, &init);
    Interp::new(&m).run_main(&mut ref_mem, &[]).expect("interp");
    let expected = ref_mem.read_i64(a);
    (m, a, expected)
}

/// Run the fault workload under `plan`; returns the simulation outcome and
/// the final memory image of `a`.
fn run_with_plan(plan: FaultPlan) -> (Result<crate::SimResult, SimError>, Vec<i64>, Vec<i64>) {
    let (m, a, expected) = fault_workload();
    let acc = translate(&m, &FrontendConfig::default()).unwrap();
    let mut mem = Memory::from_module(&m);
    mem.init_i64(a, &(0..32).map(|x| x * 2).collect::<Vec<_>>());
    let cfg = SimConfig {
        deadlock_cycles: 5_000,
        max_cycles: 2_000_000,
        faults: plan,
        ..SimConfig::default()
    };
    let r = simulate(&acc, &mut mem, &[], &cfg);
    let got = mem.read_i64(a);
    (r, got, expected)
}

/// An always-fire single-event plan: the very first opportunity of `class`
/// injects, so every fault test exercises its class deterministically.
fn certain(class: FaultClass, seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        specs: vec![FaultSpec {
            class,
            rate_ppm: 1_000_000,
            max_events: 1,
        }],
    }
}

#[test]
fn underbuffered_edge_deadlocks_and_suggestion_fixes_it() {
    // Model a μopt pass that wrongly removed a pipeline register: squeeze
    // one dynamic data edge to Fifo(0). The producer can then never hand
    // its token over, so the watchdog must name the blocked channel cycle
    // and suggest the buffer bump that repairs it.
    let (m, a, expected) = fault_workload();
    let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    let squeezed = {
        let df = &mut acc.task_mut(lp).dataflow;
        let store = df
            .node_ids()
            .find(|&n| matches!(df.node(n).kind, muir_core::node::NodeKind::Store { .. }))
            .unwrap();
        let is_dyn = |df: &muir_core::dataflow::Dataflow, n: muir_core::dataflow::NodeId| {
            !matches!(
                df.node(n).kind,
                muir_core::node::NodeKind::Input { .. } | muir_core::node::NodeKind::Const(_)
            )
        };
        let ei = df
            .edges
            .iter()
            .position(|e| {
                e.dst == store
                    && matches!(e.kind, muir_core::dataflow::EdgeKind::Data)
                    && is_dyn(df, e.src)
            })
            .expect("dynamic data edge into the store");
        df.edges[ei].buffering = muir_core::dataflow::Buffering::Fifo(0);
        ei
    };
    let mut mem = Memory::from_module(&m);
    mem.init_i64(a, &(0..32).map(|x| x * 2).collect::<Vec<_>>());
    let cfg = SimConfig {
        deadlock_cycles: 2_000,
        ..SimConfig::default()
    };
    let e = simulate(&acc, &mut mem, &[], &cfg).unwrap_err();
    let SimError::Deadlock { report, .. } = &e else {
        panic!("want Deadlock, got {e}")
    };
    // The report names the squeezed channel as the Full link of the cycle.
    assert!(
        report
            .wait_cycle
            .iter()
            .any(|w| w.state == ChannelState::Full && w.edge == squeezed as u32),
        "cycle names the squeezed edge: {e}"
    );
    assert!(
        report
            .wait_cycle
            .iter()
            .any(|w| w.state == ChannelState::Empty),
        "consumer side of the cycle is starved: {e}"
    );
    let sugg = report
        .suggestion
        .expect("full channel in cycle implies a suggestion");
    assert_eq!(sugg.edge, squeezed as u32, "{e}");
    assert!(sugg.depth >= 1, "{e}");
    // Apply the suggested re-buffering: the run must now complete and
    // match the reference result.
    let df = &mut acc.tasks[sugg.task as usize].dataflow;
    df.edges[sugg.edge as usize].buffering = muir_core::dataflow::Buffering::Fifo(sugg.depth);
    let mut mem = Memory::from_module(&m);
    mem.init_i64(a, &(0..32).map(|x| x * 2).collect::<Vec<_>>());
    let r = simulate(&acc, &mut mem, &[], &SimConfig::default()).expect("fixed run completes");
    assert!(r.cycles > 0);
    assert_eq!(
        mem.read_i64(a),
        expected,
        "fixed run is functionally correct"
    );
}

#[test]
fn idle_skip_never_outruns_the_deadlock_watchdog() {
    // The ready-set scheduler fast-forwards over cycles where no node can
    // fire. A deadlocked accelerator is the extreme case: nothing is ever
    // ready again, so an unbounded skip would jump straight past the
    // watchdog deadline (or spin to the hard cycle limit). The skip target
    // must be capped at `last_progress + deadlock_cycles`, which makes both
    // schedulers report the deadlock at exactly the same cycle.
    let (m, a, _) = fault_workload();
    let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    {
        let df = &mut acc.task_mut(lp).dataflow;
        let store = df
            .node_ids()
            .find(|&n| matches!(df.node(n).kind, muir_core::node::NodeKind::Store { .. }))
            .unwrap();
        let ei = df
            .edges
            .iter()
            .position(|e| {
                e.dst == store
                    && matches!(e.kind, muir_core::dataflow::EdgeKind::Data)
                    && !matches!(
                        df.node(e.src).kind,
                        muir_core::node::NodeKind::Input { .. }
                            | muir_core::node::NodeKind::Const(_)
                    )
            })
            .expect("dynamic data edge into the store");
        df.edges[ei].buffering = muir_core::dataflow::Buffering::Fifo(0);
    }
    let run = |kind: SchedulerKind| {
        let mut mem = Memory::from_module(&m);
        mem.init_i64(a, &(0..32).map(|x| x * 2).collect::<Vec<_>>());
        let cfg = SimConfig {
            deadlock_cycles: 2_000,
            ..SimConfig::default()
        }
        .with_scheduler(kind);
        simulate(&acc, &mut mem, &[], &cfg).unwrap_err()
    };
    let (dense, ready) = (run(SchedulerKind::Dense), run(SchedulerKind::Ready));
    let SimError::Deadlock { cycle: dc, .. } = dense else {
        panic!("dense: want Deadlock, got {dense}")
    };
    let SimError::Deadlock { cycle: rc, .. } = ready else {
        panic!("ready: want Deadlock, got {ready}")
    };
    assert_eq!(
        dc, rc,
        "watchdog fires at the same cycle under both schedulers"
    );
}

#[test]
fn token_drop_is_never_a_silent_wrong_answer() {
    for seed in 0..8u64 {
        let (r, got, expected) = run_with_plan(certain(FaultClass::TokenDrop, seed));
        match r {
            // Typed detection (misordered tokens) or a hang are both
            // acceptable surfacings of a lost valid pulse.
            Err(SimError::Fault {
                kind: FaultKind::TokenMisorder,
                ..
            }) => {}
            Err(SimError::Deadlock { .. }) | Err(SimError::CycleLimitExhausted { .. }) => {}
            Err(other) => panic!("seed {seed}: unexpected error class {other}"),
            Ok(res) => {
                // A run that completes despite the drop must either be
                // correct or carry the injected-fault flag.
                assert!(
                    got == expected || res.stats.faults_injected() > 0,
                    "seed {seed}: silent corruption"
                );
            }
        }
    }
}

#[test]
fn fault_runs_are_deterministic_per_seed() {
    for class in [
        FaultClass::TokenDrop,
        FaultClass::TokenBitFlip,
        FaultClass::TokenDup,
    ] {
        let (r1, got1, _) = run_with_plan(certain(class, 42));
        let (r2, got2, _) = run_with_plan(certain(class, 42));
        assert_eq!(
            format!("{r1:?}"),
            format!("{r2:?}"),
            "{class}: same seed, same outcome"
        );
        assert_eq!(got1, got2, "{class}: same seed, same memory image");
    }
}

#[test]
fn bit_flip_completion_is_flagged_in_stats() {
    let mut flagged = 0;
    for seed in 0..8u64 {
        let (r, got, expected) = run_with_plan(certain(FaultClass::TokenBitFlip, seed));
        if let Ok(res) = r {
            assert_eq!(res.stats.faults.token_bit_flip, 1, "seed {seed}");
            assert!(res.stats.faults_injected() > 0, "seed {seed}");
            flagged += 1;
            if got != expected {
                // Silent corruption is impossible: the stats carry the flag.
                assert!(res.stats.faults_injected() > 0);
            }
        }
    }
    assert!(
        flagged > 0,
        "at least one flipped run completes (flag visible)"
    );
}

#[test]
fn uncorrectable_ecc_surfaces_as_typed_fault() {
    let mut saw_uncorrectable = false;
    let mut saw_corrected = false;
    for seed in 0..12u64 {
        let (r, _, _) = run_with_plan(certain(FaultClass::MemEcc, seed));
        match r {
            Err(SimError::Fault {
                kind: FaultKind::EccUncorrectable,
                cycle,
                ..
            }) => {
                assert!(cycle > 0);
                saw_uncorrectable = true;
            }
            Err(other) => panic!("seed {seed}: unexpected error {other}"),
            Ok(res) => {
                // The single event was corrected in flight: logged, harmless.
                assert_eq!(res.stats.faults.mem_ecc, 1, "seed {seed}");
                assert_eq!(res.stats.ecc_corrected(), 1, "seed {seed}");
                saw_corrected = true;
            }
        }
    }
    assert!(
        saw_uncorrectable,
        "some seed produces an uncorrectable event"
    );
    assert!(saw_corrected, "some seed produces a corrected event");
}

#[test]
fn stuck_handshake_is_diagnosed_with_the_stuck_node() {
    let (r, _, _) = run_with_plan(certain(FaultClass::StuckHandshake, 7));
    let e = r.expect_err("a stuck output handshake can never complete");
    let SimError::Deadlock { report, .. } = &e else {
        panic!("want Deadlock, got {e}")
    };
    assert!(
        !report.stuck_nodes.is_empty(),
        "report names the stuck node: {e}"
    );
    assert!(e.to_string().contains("stuck handshake"), "{e}");
}

#[test]
fn dram_timeout_hangs_are_attributed_to_memory() {
    // Force the severe delay arm: scan seeds until one run hangs; the
    // watchdog must point at outstanding memory traffic, not at channels.
    let mut saw_hang = false;
    for seed in 0..12u64 {
        let (r, _, _) = run_with_plan(certain(FaultClass::DramTimeout, seed));
        match r {
            Err(SimError::Deadlock { report, .. }) => {
                assert!(report.mem_outstanding > 0, "hang blamed on memory");
                saw_hang = true;
            }
            Err(SimError::CycleLimitExhausted { .. }) => saw_hang = true,
            Err(other) => panic!("seed {seed}: unexpected error {other}"),
            Ok(res) => {
                // Minor-delay arm: run completes, slowdown is logged.
                assert_eq!(res.stats.faults.dram_timeout, 1, "seed {seed}");
            }
        }
    }
    assert!(saw_hang, "some seed takes the timeout arm");
}

// ---------------------------------------------------------------------------
// Observability: stall attribution and the zero-perturbation contract
// ---------------------------------------------------------------------------

/// The fault workload with one dynamic data edge into the store squeezed
/// to `Fifo(depth)`; returns the accelerator and the squeezed edge's
/// (task, edge) coordinates.
fn squeezed_accelerator(m: &Module, depth: u32) -> (Accelerator, usize, usize) {
    let mut acc = translate(m, &FrontendConfig::default()).unwrap();
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    let ti = lp.0 as usize;
    let ei = {
        let df = &mut acc.task_mut(lp).dataflow;
        let store = df
            .node_ids()
            .find(|&n| matches!(df.node(n).kind, muir_core::node::NodeKind::Store { .. }))
            .unwrap();
        let is_dyn = |df: &muir_core::dataflow::Dataflow, n: muir_core::dataflow::NodeId| {
            !matches!(
                df.node(n).kind,
                muir_core::node::NodeKind::Input { .. } | muir_core::node::NodeKind::Const(_)
            )
        };
        let ei = df
            .edges
            .iter()
            .position(|e| {
                e.dst == store
                    && matches!(e.kind, muir_core::dataflow::EdgeKind::Data)
                    && is_dyn(df, e.src)
            })
            .expect("dynamic data edge into the store");
        df.edges[ei].buffering = muir_core::dataflow::Buffering::Fifo(depth);
        ei
    };
    (acc, ti, ei)
}

#[test]
fn stall_attribution_blames_the_channel_deadlock_diagnosis_would_bump() {
    // An under-buffered (but live) channel: every other edge gets a deep
    // elastic buffer, so the squeezed Fifo(1) edge is the only place
    // back-pressure can accumulate. The profile must attribute (nearly)
    // all output-full stall cycles to that channel — the same channel the
    // deadlock watchdog names when the buffer is removed entirely.
    let (m, a, expected) = fault_workload();
    let (acc, ti, ei) = squeezed_accelerator(&m, 1);
    let mut mem = Memory::from_module(&m);
    mem.init_i64(a, &(0..32).map(|x| x * 2).collect::<Vec<_>>());
    let cfg = SimConfig {
        elastic_depth: 1024,
        trace: crate::TraceConfig::on(),
        ..SimConfig::default()
    };
    let r = simulate(&acc, &mut mem, &[], &cfg).expect("squeezed-but-live run completes");
    assert_eq!(mem.read_i64(a), expected, "still functionally correct");

    let profile = r.profile.expect("tracing was on");
    let total_full: u64 = profile.channels.iter().map(|c| c.full_stalls).sum();
    let squeezed_full = profile
        .channels
        .iter()
        .find(|c| c.task as usize == ti && c.edge as usize == ei)
        .map_or(0, |c| c.full_stalls);
    assert!(
        squeezed_full > 0,
        "squeezed channel recorded no full stalls"
    );
    assert!(
        squeezed_full as f64 >= 0.9 * total_full as f64,
        "squeezed channel holds {squeezed_full}/{total_full} full-stall cycles"
    );

    // The bottleneck report's top channel entry names the same edge.
    let report = profile.bottlenecks(5);
    let squeezed_name = profile
        .channels
        .iter()
        .find(|c| c.task as usize == ti && c.edge as usize == ei)
        .map(|c| c.name.clone())
        .unwrap();
    let top_channel = report
        .entries
        .iter()
        .find(|b| b.kind == crate::BottleneckKind::Channel)
        .expect("a channel bottleneck is reported");
    assert_eq!(top_channel.name, squeezed_name, "{report}");
    assert!(
        top_channel.suggestion.contains("Fifo(2)"),
        "suggestion doubles the squeezed capacity: {}",
        top_channel.suggestion
    );

    // Correspondence: with the buffer removed entirely the run deadlocks,
    // and the watchdog's re-buffering suggestion names the very channel
    // the profile blamed.
    let (acc0, ti0, ei0) = squeezed_accelerator(&m, 0);
    assert_eq!((ti0, ei0), (ti, ei), "same edge squeezed in both builds");
    let mut mem = Memory::from_module(&m);
    mem.init_i64(a, &(0..32).map(|x| x * 2).collect::<Vec<_>>());
    let cfg0 = SimConfig {
        deadlock_cycles: 2_000,
        ..SimConfig::default()
    };
    let e = simulate(&acc0, &mut mem, &[], &cfg0).unwrap_err();
    let SimError::Deadlock { report, .. } = &e else {
        panic!("want Deadlock, got {e}")
    };
    let sugg = report.suggestion.expect("deadlock suggests a re-buffer");
    assert_eq!(
        (sugg.task as usize, sugg.edge as usize),
        (ti, ei),
        "profile and deadlock diagnosis name the same channel"
    );
}

#[test]
fn tracing_never_perturbs_the_simulation() {
    // The observer only reads engine facts; enabling it — at any ring
    // capacity or sampling rate — must leave cycles, firings, statistics
    // and results bit-identical to the untraced run.
    let mut m = Module::new("perturb");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let b_obj = m.add_mem_object("b", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(8), 1, |b, i| {
        let base = b.mul(i, ValueRef::int(8));
        b.for_loop(0, ValueRef::int(8), 1, |b, j| {
            let idx = b.add(base, j);
            let v = b.load(a, idx);
            let w = b.load(b_obj, idx);
            let s = b.mul(v, w);
            b.store(a, idx, s);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let acc = translate(&m, &FrontendConfig::default()).unwrap();
    let init_a: Vec<i64> = (0..64).map(|x| x + 1).collect();
    let init_b: Vec<i64> = (0..64).map(|x| 2 * x - 5).collect();

    let run = |trace: crate::TraceConfig| {
        let mut mem = Memory::from_module(&m);
        mem.init_i64(a, &init_a);
        mem.init_i64(b_obj, &init_b);
        let cfg = SimConfig {
            trace,
            ..SimConfig::default()
        };
        let r = simulate(&acc, &mut mem, &[], &cfg).expect("run completes");
        (r, mem.read_i64(a))
    };

    let (base, base_mem) = run(crate::TraceConfig::default());
    assert!(base.profile.is_none() && base.trace.is_none());

    let variants = [
        crate::TraceConfig::on(),
        // Tiny ring: forces the drop path.
        crate::TraceConfig {
            capacity: 64,
            ..crate::TraceConfig::on()
        },
        // Sub-sampled ring events.
        crate::TraceConfig {
            sample_ppm: 1_000,
            seed: 7,
            ..crate::TraceConfig::on()
        },
    ];
    for (k, v) in variants.into_iter().enumerate() {
        let (traced, traced_mem) = run(v);
        assert_eq!(base.cycles, traced.cycles, "variant {k}: cycles differ");
        assert_eq!(base.stats.fires, traced.stats.fires, "variant {k}");
        assert_eq!(
            base.stats.task_invocations, traced.stats.task_invocations,
            "variant {k}"
        );
        assert_eq!(base.results, traced.results, "variant {k}");
        assert_eq!(base_mem, traced_mem, "variant {k}: memory differs");
        let profile = traced.profile.expect("tracing was on");
        assert_eq!(profile.cycles, traced.cycles, "variant {k}");
        assert_eq!(
            profile.events_recorded + profile.events_dropped,
            traced.trace.as_ref().unwrap().events.len() as u64 + profile.events_dropped,
            "variant {k}: ring accounting is consistent"
        );
    }
}

/// A multi-tile workload (spawned region replicated 4×) that exercises
/// dispatch, spawn completion, and junction arbitration — the paths where
/// a parallel-plan bug would show up as divergence.
fn tiled_workload() -> (Module, muir_mir::instr::MemObjId, Accelerator) {
    let mut m = Module::new("ptiles");
    let a = m.add_mem_object("a", ScalarType::I32, 256);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.par_for(0, 64, 1, |b, i| {
        let x1 = b.mul(i, i);
        let x2 = b.mul(x1, ValueRef::int(3));
        let x3 = b.add(x2, ValueRef::int(11));
        let x4 = b.mul(x3, x1);
        b.store(a, i, x4);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
    for t in acc.task_ids().collect::<Vec<_>>() {
        if matches!(acc.task(t).kind, muir_core::accel::TaskKind::Region) && t != acc.root {
            acc.task_mut(t).tiles = 4;
            acc.task_mut(t).queue_depth = 8;
        }
    }
    (m, a, acc)
}

/// Everything observable about a run except `sched_visits` (a simulator
/// effort counter that differs between schedulers by design).
#[allow(clippy::type_complexity)]
fn observables(
    r: &crate::SimResult,
    mem: &Memory,
) -> (u64, Vec<Value>, u64, Vec<u64>, Vec<u64>, u64, u64, Memory) {
    (
        r.cycles,
        r.results.clone(),
        r.stats.fires,
        r.stats.task_invocations.clone(),
        r.stats.task_busy_cycles.clone(),
        r.stats.dram_fills,
        r.stats.faults.total(),
        mem.clone(),
    )
}

#[test]
fn parallel_scheduler_matches_dense_on_tiled_workload() {
    let (m, a, acc) = tiled_workload();
    let run = |cfg: SimConfig| {
        let mut mem = Memory::from_module(&m);
        let r = simulate(&acc, &mut mem, &[], &cfg).expect("simulate");
        (observables(&r, &mem), mem.read_i64(a))
    };
    let base = SimConfig::default();
    let (dense, dense_a) = run(base.clone().with_scheduler(SchedulerKind::Dense));
    let (ready, _) = run(base.clone().with_scheduler(SchedulerKind::Ready));
    assert_eq!(dense, ready, "ready vs dense");
    for threads in [1u32, 2, 4, 8] {
        let (par, par_a) = run(base
            .clone()
            .with_scheduler(SchedulerKind::Parallel)
            .with_threads(threads));
        assert_eq!(dense, par, "parallel@{threads} vs dense");
        assert_eq!(dense_a, par_a, "parallel@{threads}: output array differs");
    }
}

#[test]
fn uop_exec_matches_interp_exec_everywhere() {
    // Exec-mode differential on the richest in-crate workload: the flat
    // micro-op dispatch (the default) and the NodeKind interpreter (the
    // oracle) must be bit-identical under every scheduler, plain and
    // faulted. The cross-workload version of this sweep lives in
    // muir-bench's four-way differential suites.
    let (m, a, acc) = tiled_workload();
    let run = |cfg: SimConfig| {
        let mut mem = Memory::from_module(&m);
        let r = simulate(&acc, &mut mem, &[], &cfg).expect("simulate");
        (observables(&r, &mem), mem.read_i64(a))
    };
    for faults in [
        FaultPlan::none(),
        FaultPlan::single(FaultClass::TokenBitFlip, 0xd1ff),
    ] {
        let base = SimConfig {
            faults,
            ..SimConfig::default()
        };
        let oracle = run(base
            .clone()
            .with_scheduler(SchedulerKind::Dense)
            .with_exec(ExecMode::Interp));
        for sched in [
            SchedulerKind::Dense,
            SchedulerKind::Ready,
            SchedulerKind::Parallel,
        ] {
            for exec in [ExecMode::Interp, ExecMode::MicroOp] {
                let got = run(base.clone().with_scheduler(sched).with_exec(exec));
                assert_eq!(oracle, got, "{sched:?}+{exec:?} vs dense+interp");
            }
        }
    }
}

#[test]
fn epoch_commit_engages_at_two_threads() {
    // The epoch path (DESIGN.md §14) requires MicroOp exec + a worker pool
    // + no fault plan; the tiled workload keeps several independent tiles
    // active, so local-tile commits must actually shard. Matching dense is
    // necessary but not sufficient — this proves the optimized path *ran*.
    let (m, a, acc) = tiled_workload();
    let run = |cfg: SimConfig| {
        let mut mem = Memory::from_module(&m);
        let r = simulate(&acc, &mut mem, &[], &cfg).expect("simulate");
        (observables(&r, &mem), mem.read_i64(a))
    };
    let base = SimConfig::default();
    let dense = run(base.clone().with_scheduler(SchedulerKind::Dense));
    let before = crate::epoch_tile_commits();
    let par = run(base
        .clone()
        .with_scheduler(SchedulerKind::Parallel)
        .with_threads(2)
        .with_exec(ExecMode::MicroOp));
    assert_eq!(dense, par, "parallel+uop@2 vs dense");
    // The counter is global and monotone, so concurrent tests can only
    // inflate the delta — a zero delta still proves *this* run (and every
    // concurrent one) bypassed the epoch path.
    assert!(
        crate::epoch_tile_commits() > before,
        "epoch commit never engaged on a multi-tile workload at 2 threads"
    );
}

#[test]
fn parallel_scheduler_matches_dense_under_faults() {
    // Seeded fault injection draws from one global RNG stream whose order
    // is visit order — the sharpest determinism probe we have.
    let (m, _a, acc) = tiled_workload();
    let plan = FaultPlan {
        seed: 0xfa57,
        specs: vec![
            FaultSpec {
                class: FaultClass::TokenBitFlip,
                rate_ppm: 4_000,
                max_events: 6,
            },
            FaultSpec {
                class: FaultClass::StuckHandshake,
                rate_ppm: 1_000,
                max_events: 2,
            },
        ],
    };
    let run = |scheduler: SchedulerKind, threads: u32| {
        let cfg = SimConfig {
            faults: plan.clone(),
            deadlock_cycles: 20_000,
            max_cycles: 5_000_000,
            ..SimConfig::default()
        }
        .with_scheduler(scheduler)
        .with_threads(threads);
        let mut mem = Memory::from_module(&m);
        let r = simulate(&acc, &mut mem, &[], &cfg);
        match r {
            Ok(r) => (format!("{:?}", r.stats.faults), Some(observables(&r, &mem))),
            Err(e) => (format!("err: {e}"), None),
        }
    };
    let dense = run(SchedulerKind::Dense, 1);
    for threads in [1u32, 2, 4, 8] {
        let par = run(SchedulerKind::Parallel, threads);
        assert_eq!(dense, par, "faulted parallel@{threads} vs dense");
    }
}

#[test]
fn parallel_with_tracing_is_bit_identical_to_dense_trace() {
    // Tracing forces the dense visitation order (like `Ready`), so the
    // trace streams must match event for event.
    let (m, _a, acc) = tiled_workload();
    let run = |scheduler: SchedulerKind| {
        let cfg = SimConfig {
            trace: crate::TraceConfig::on(),
            ..SimConfig::default()
        }
        .with_scheduler(scheduler)
        .with_threads(4);
        let mut mem = Memory::from_module(&m);
        let r = simulate(&acc, &mut mem, &[], &cfg).expect("simulate");
        (observables(&r, &mem), r.trace.expect("traced").events)
    };
    let (dense, dense_ev) = run(SchedulerKind::Dense);
    let (par, par_ev) = run(SchedulerKind::Parallel);
    assert_eq!(dense, par, "traced parallel vs dense");
    assert_eq!(dense_ev, par_ev, "trace event streams differ");
}

#[test]
fn simulate_batch_matches_standalone_runs_in_order() {
    let (m, a, acc) = tiled_workload();
    // Jobs differ in memory image, scheduler, and thread count.
    let scheds = [
        (SchedulerKind::Dense, 1u32),
        (SchedulerKind::Ready, 1),
        (SchedulerKind::Parallel, 1),
        (SchedulerKind::Parallel, 2),
        (SchedulerKind::Parallel, 4),
    ];
    let mut jobs = Vec::new();
    for (j, &(s, t)) in scheds.iter().enumerate() {
        let mut mem = Memory::from_module(&m);
        mem.init_i64(a, &vec![j as i64; 256]);
        jobs.push(crate::BatchJob {
            args: Vec::new(),
            mem,
            cfg: SimConfig::default().with_scheduler(s).with_threads(t),
        });
    }
    for threads in [1usize, 2, 4] {
        let runs = crate::simulate_batch(&acc, jobs.clone(), threads);
        assert_eq!(runs.len(), jobs.len());
        for (j, (job, run)) in jobs.iter().zip(&runs).enumerate() {
            let mut mem = job.mem.clone();
            let solo = simulate(&acc, &mut mem, &job.args, &job.cfg).expect("standalone");
            let batch = run.outcome.as_ref().expect("batch run");
            assert_eq!(
                observables(&solo, &mem),
                observables(batch, &run.mem),
                "batch({threads}) job {j} diverged from standalone"
            );
        }
    }
}

#[test]
fn simulate_batch_rejects_corrupt_graph_per_job() {
    let (m, _a, mut acc) = tiled_workload();
    // Corrupt the graph the same way `corrupted_graph_is_rejected_up_front`
    // does: cut a data edge feeding a store, leaving its port unconnected.
    let t = acc
        .task_ids()
        .find(|&t| {
            acc.task(t).dataflow.node_ids().any(|n| {
                matches!(
                    acc.task(t).dataflow.node(n).kind,
                    muir_core::node::NodeKind::Store { .. }
                )
            })
        })
        .expect("a task with a store");
    let df = &mut acc.task_mut(t).dataflow;
    let store = df
        .node_ids()
        .find(|&n| matches!(df.node(n).kind, muir_core::node::NodeKind::Store { .. }))
        .unwrap();
    let pos = df.edges.iter().position(|e| e.dst == store).unwrap();
    df.edges.remove(pos);
    let jobs = vec![crate::BatchJob {
        args: Vec::new(),
        mem: Memory::from_module(&m),
        cfg: SimConfig::default(),
    }];
    let runs = crate::simulate_batch(&acc, jobs, 2);
    let err = match &runs[0].outcome {
        Err(e @ SimError::GraphRejected { .. }) => e,
        other => panic!(
            "corrupt graph must reject, got {:?}",
            other.as_ref().map(|r| r.cycles)
        ),
    };
    // The batch mapping must carry the verifier's actual finding — the
    // failure site and message — not just the E-SIM-GRAPH bucket.
    let rendered = err.to_string();
    assert_eq!(err.code(), "E-SIM-GRAPH");
    assert!(rendered.contains("unconnected"), "{rendered}");
    match err {
        SimError::GraphRejected { source } => {
            assert!(!source.at.is_empty(), "verify error names a site");
            assert!(!source.message.is_empty(), "verify error carries text");
        }
        _ => unreachable!(),
    }
}
