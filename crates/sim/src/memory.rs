//! Cycle-level models of the hardware structures: banked scratchpads,
//! set-associative banked caches, and the DRAM/AXI port (§3.2, §3.4).
//!
//! The **databox** behaviour of §3.4 lives here: a typed access (scalar,
//! vector, tensor tile) is sliced into element transactions, issued in
//! parallel subject to bank/port limits, and the responses are coalesced
//! back into one completion.

use crate::fault::{Ecc, FaultClass, FaultCounts, FaultPlan, Injector, DELAY_MINOR, DELAY_TIMEOUT};
use std::collections::VecDeque;

use muir_core::structure::{Structure, StructureKind};

/// Fault classes owned by the memory models.
const MEM_FAULTS: [FaultClass; 2] = [FaultClass::MemEcc, FaultClass::DramTimeout];

/// Identifier handed back on completion of a memory request.
pub type ReqId = u64;

/// One element-granularity transaction.
#[derive(Debug, Clone)]
struct ElemTxn {
    req: ReqId,
    /// Flat global element address (banks stripe on this).
    addr: u64,
    is_write: bool,
}

/// A typed request from a load/store node. Accesses are always a
/// contiguous element range (scalars, vectors, and tiles are row-major
/// and aligned), so the request carries `base + n` rather than an
/// address list — building a `Vec` per memory firing was measurable
/// allocator churn on the cycle path.
#[derive(Debug, Clone, Copy)]
pub struct MemRequest {
    /// Completion identifier.
    pub id: ReqId,
    /// First flat element address.
    pub base: u64,
    /// Number of consecutive elements touched.
    pub n: u64,
    /// Whether this is a store.
    pub is_write: bool,
}

/// Completion notice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// The request that finished.
    pub id: ReqId,
    /// Cycle at which data is valid.
    pub at: u64,
    /// ECC status of the returned data.
    pub ecc: Ecc,
}

/// Statistics for one structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructStats {
    /// Requests accepted.
    pub requests: u64,
    /// Element transactions serviced.
    pub elem_txns: u64,
    /// Transactions delayed by bank/port contention (conflict cycles).
    pub conflict_stalls: u64,
    /// Cache hits (caches only).
    pub hits: u64,
    /// Cache misses (caches only).
    pub misses: u64,
    /// Lines written back to DRAM (caches only).
    pub writebacks: u64,
    /// ECC single-bit errors corrected in flight (fault injection only).
    pub ecc_corrected: u64,
}

impl StructStats {
    /// Miss rate over `hits + misses`. Scratchpads, DRAM, and idle caches
    /// have no cacheable traffic; they report 0 rather than dividing by
    /// zero.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Hit rate over `hits + misses` (0 when the structure saw no
    /// cacheable traffic — deliberately *not* 1.0, so an idle cache never
    /// reads as perfectly warm).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cache line state.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Cycle model of one hardware structure.
#[derive(Debug)]
pub struct StructModel {
    kind: StructureKind,
    /// Per-bank queues of element transactions.
    banks: Vec<VecDeque<ElemTxn>>,
    /// Outstanding per-request remaining element counts and worst latency.
    outstanding: Vec<(ReqId, u32)>,
    /// Scheduled responses.
    done: Vec<MemResponse>,
    /// Cache directory (caches only): sets × ways.
    lines: Vec<Vec<Line>>,
    /// In-flight DRAM line fills: (ready_cycle, req, remaining-elems-tag).
    dram_fills: VecDeque<(u64, ElemTxn)>,
    /// DRAM bandwidth accounting for the current cycle.
    lru_clock: u64,
    /// Statistics.
    pub stats: StructStats,
    /// Fault injection (None on fault-free runs — the common case).
    injector: Option<Injector>,
}

impl StructModel {
    /// Build a model for a structure.
    pub fn new(s: &Structure) -> StructModel {
        let nbanks = match &s.kind {
            StructureKind::Scratchpad { banks, .. } => *banks as usize,
            StructureKind::Cache { banks, .. } => *banks as usize,
            StructureKind::Dram { .. } => 1,
        };
        let lines = match &s.kind {
            StructureKind::Cache {
                capacity,
                assoc,
                line_elems,
                ..
            } => {
                let nlines = (*capacity / *line_elems as u64).max(1);
                let sets = (nlines / *assoc as u64).max(1) as usize;
                vec![vec![Line::default(); *assoc as usize]; sets]
            }
            _ => Vec::new(),
        };
        StructModel {
            kind: s.kind.clone(),
            banks: vec![VecDeque::new(); nbanks.max(1)],
            outstanding: Vec::new(),
            done: Vec::new(),
            lines,
            dram_fills: VecDeque::new(),
            lru_clock: 0,
            stats: StructStats::default(),
            injector: None,
        }
    }

    /// Arm fault injection for this structure. The salt (the structure's
    /// index) decorrelates its stream from every other domain's.
    pub(crate) fn arm_faults(&mut self, plan: &FaultPlan, salt: u64) {
        let inj = Injector::new(plan, 0x3e3a_0000 ^ salt, &MEM_FAULTS);
        if inj.active() {
            self.injector = Some(inj);
        }
    }

    /// Injection tallies for this structure (zero when unarmed).
    pub(crate) fn fault_counts(&self) -> FaultCounts {
        self.injector.as_ref().map(|i| i.counts).unwrap_or_default()
    }

    /// ECC status for a completing response: mostly clean; when the MemEcc
    /// class fires, half the events are corrected in flight (logged only)
    /// and half are uncorrectable (the engine raises a typed fault).
    fn response_ecc(&mut self) -> Ecc {
        let Some(inj) = self.injector.as_mut() else {
            return Ecc::Clean;
        };
        if !inj.roll(FaultClass::MemEcc) {
            return Ecc::Clean;
        }
        if inj.below(2) == 0 {
            self.stats.ecc_corrected += 1;
            Ecc::Corrected
        } else {
            Ecc::Uncorrectable
        }
    }

    /// Extra response latency: when the DramTimeout class fires, half the
    /// events are a recoverable slowdown and half exceed any watchdog.
    fn response_delay(&mut self) -> u64 {
        let Some(inj) = self.injector.as_mut() else {
            return 0;
        };
        if !inj.roll(FaultClass::DramTimeout) {
            return 0;
        }
        if inj.below(2) == 0 {
            DELAY_MINOR
        } else {
            DELAY_TIMEOUT
        }
    }

    /// Accept a request, slicing it into transactions. An untyped
    /// structure issues one element transaction per address; a tile-shaped
    /// scratchpad (§6.3) has rows as wide as the tile, so a whole aligned
    /// tile moves as a single transaction.
    pub fn submit(&mut self, req: MemRequest) {
        self.stats.requests += 1;
        let row = match &self.kind {
            StructureKind::Scratchpad {
                shape: Some(sh), ..
            } => (sh.elems() as u64).max(1),
            _ => 1,
        };
        let ngroups = req.n.div_ceil(row);
        self.outstanding
            .push((req.id, u32::try_from(ngroups).unwrap_or(u32::MAX).max(1)));
        if ngroups == 0 {
            // Degenerate: complete next tick.
            self.done.push(MemResponse {
                id: req.id,
                at: 0,
                ecc: Ecc::Clean,
            });
            return;
        }
        let nbanks = self.banks.len() as u64;
        for g in 0..ngroups {
            let addr = req.base + g * row;
            let bank = ((addr / row) % nbanks) as usize;
            self.banks[bank].push_back(ElemTxn {
                req: req.id,
                addr,
                is_write: req.is_write,
            });
        }
    }

    /// Advance one cycle; returns completions whose data is valid *now*.
    pub fn tick(&mut self, cycle: u64, dram: Option<&mut DramModel>) -> Vec<MemResponse> {
        // Idle fast path. `submit` records the `outstanding` entry before it
        // queues any bank/fill transaction, so an empty `outstanding` implies
        // the banks and fill queue are empty too; with `done` also empty the
        // whole tick body is a no-op (no stalls accrue, no responses mature,
        // no ECC draws). Structures spend most cycles idle, and the engine
        // ticks every structure every cycle, so this is the common case.
        if self.outstanding.is_empty() && self.done.is_empty() {
            return Vec::new();
        }
        // Copy the scalar parameters out instead of cloning the whole
        // `StructureKind` every cycle (this runs per structure per cycle).
        enum Tick {
            Spad(u32, u32),
            Cache(u32, u32),
            Dram(u32, u32),
        }
        let t = match &self.kind {
            StructureKind::Scratchpad {
                ports_per_bank,
                latency,
                ..
            } => Tick::Spad(*ports_per_bank, *latency),
            StructureKind::Cache {
                line_elems,
                hit_latency,
                ..
            } => Tick::Cache(*line_elems, *hit_latency),
            StructureKind::Dram {
                latency,
                elems_per_cycle,
            } => Tick::Dram(*latency, *elems_per_cycle),
        };
        match t {
            Tick::Spad(ports_per_bank, latency) => self.tick_spad(cycle, ports_per_bank, latency),
            Tick::Cache(line_elems, hit_latency) => {
                self.tick_cache(cycle, line_elems, hit_latency, dram);
            }
            Tick::Dram(latency, elems_per_cycle) => {
                self.tick_raw_dram(cycle, latency, elems_per_cycle);
            }
        }
        // Fast path: nothing matured this cycle (the overwhelmingly common
        // case) — `Vec::new()` does not allocate.
        if self.done.iter().all(|r| r.at > cycle) {
            return Vec::new();
        }
        // One allocation, not `partition`'s two; `retain` keeps both the
        // matured and the still-pending responses in original order.
        let mut ready = Vec::new();
        self.done.retain(|r| {
            if r.at <= cycle {
                ready.push(*r);
                false
            } else {
                true
            }
        });
        ready
    }

    fn retire_elem(&mut self, req: ReqId, at: u64) {
        self.stats.elem_txns += 1;
        // `outstanding` stays sorted by request id (ids are handed out
        // monotonically and `submit` pushes in order), so the per-element
        // lookup is a binary search instead of a linear scan — this runs
        // once per served element transaction, every cycle.
        let Ok(i) = self.outstanding.binary_search_by_key(&req, |&(id, _)| id) else {
            return;
        };
        self.outstanding[i].1 -= 1;
        if self.outstanding[i].1 == 0 {
            let ecc = self.response_ecc();
            let at = at + self.response_delay();
            self.done.push(MemResponse { id: req, at, ecc });
            self.outstanding.remove(i);
        }
    }

    fn tick_spad(&mut self, cycle: u64, ports_per_bank: u32, latency: u32) {
        for b in 0..self.banks.len() {
            let mut served = 0;
            while served < ports_per_bank {
                let Some(txn) = self.banks[b].pop_front() else {
                    break;
                };
                self.retire_elem(txn.req, cycle + latency as u64);
                served += 1;
            }
            self.stats.conflict_stalls += self.banks[b].len() as u64;
        }
    }

    fn tick_cache(
        &mut self,
        cycle: u64,
        line_elems: u32,
        hit_latency: u32,
        dram: Option<&mut DramModel>,
    ) {
        // Drain finished DRAM fills first: install the line, service the txn.
        while let Some(&(ready, _)) = self.dram_fills.front() {
            if ready > cycle {
                break;
            }
            let Some((_, txn)) = self.dram_fills.pop_front() else {
                break;
            };
            self.install_line(txn.addr, line_elems, txn.is_write);
            self.retire_elem(txn.req, cycle);
        }
        // Service one txn per bank per cycle.
        let nbanks = self.banks.len();
        let mut victims: Vec<ElemTxn> = Vec::new();
        for b in 0..nbanks {
            if let Some(txn) = self.banks[b].pop_front() {
                if self.probe(txn.addr, line_elems, txn.is_write) {
                    self.stats.hits += 1;
                    self.retire_elem(txn.req, cycle + hit_latency as u64);
                } else {
                    self.stats.misses += 1;
                    victims.push(txn);
                }
            }
            self.stats.conflict_stalls += self.banks[b].len() as u64;
        }
        if let Some(dram) = dram {
            for txn in victims {
                let ready = dram.fetch_line(cycle, line_elems);
                self.dram_fills.push_back((ready, txn));
            }
            // Keep fills sorted by readiness (DRAM returns in order anyway).
            self.dram_fills.make_contiguous().sort_by_key(|(r, _)| *r);
        } else {
            // No DRAM behind this cache: treat as hit after a long latency.
            for txn in victims {
                self.retire_elem(txn.req, cycle + 40);
            }
        }
    }

    fn tick_raw_dram(&mut self, cycle: u64, latency: u32, elems_per_cycle: u32) {
        let mut budget = elems_per_cycle;
        while budget > 0 {
            let Some(txn) = self.banks[0].pop_front() else {
                break;
            };
            self.retire_elem(txn.req, cycle + latency as u64);
            budget -= 1;
        }
        self.stats.conflict_stalls += self.banks[0].len() as u64;
    }

    fn set_and_tag(&self, addr: u64, line_elems: u32) -> (usize, u64) {
        let line = addr / line_elems as u64;
        let sets = self.lines.len() as u64;
        ((line % sets) as usize, line / sets)
    }

    fn probe(&mut self, addr: u64, line_elems: u32, is_write: bool) -> bool {
        let (set, tag) = self.set_and_tag(addr, line_elems);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        for l in &mut self.lines[set] {
            if l.valid && l.tag == tag {
                l.lru = clock;
                l.dirty |= is_write;
                return true;
            }
        }
        false
    }

    fn install_line(&mut self, addr: u64, line_elems: u32, is_write: bool) {
        let (set, tag) = self.set_and_tag(addr, line_elems);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let way = self.lines[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let line = &mut self.lines[set][way];
        if line.valid && line.dirty {
            self.stats.writebacks += 1;
        }
        *line = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: clock,
        };
    }

    /// Reconfigure bank count (used when μopt transformed the graph between
    /// simulations — models are rebuilt, so this is mostly for tests).
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Outstanding transactions (for idle detection).
    pub fn is_idle(&self) -> bool {
        self.outstanding.is_empty() && self.dram_fills.is_empty() && self.done.is_empty()
    }

    /// Earliest cycle (>= `cycle`) at which ticking this structure can do
    /// anything, or `None` if it is fully quiescent. Used by the engine's
    /// idle-skip: a tick at any earlier cycle is a provable no-op (empty
    /// banks serve nothing and accrue zero conflict stalls; pending fills
    /// and responses only mature at their recorded cycles). Non-empty
    /// banks pin activity to *this* cycle — they must be ticked every
    /// cycle, both to serve transactions and to accrue conflict stalls
    /// exactly as the dense scheduler would.
    pub fn next_activity(&self, cycle: u64) -> Option<u64> {
        if self.banks.iter().any(|b| !b.is_empty()) {
            return Some(cycle);
        }
        let mut next: Option<u64> = None;
        let mut merge = |at: u64| {
            let at = at.max(cycle);
            next = Some(next.map_or(at, |n| n.min(at)));
        };
        for &(ready, _) in &self.dram_fills {
            merge(ready);
        }
        for r in &self.done {
            merge(r.at);
        }
        next
    }
}

/// The shared DRAM/AXI port: fixed access latency plus a line-fill
/// bandwidth limit.
#[derive(Debug)]
pub struct DramModel {
    latency: u64,
    elems_per_cycle: u32,
    /// The cycle at which the channel frees up.
    busy_until: u64,
    /// Line fills issued.
    pub fills: u64,
    /// Fault injection (None on fault-free runs).
    injector: Option<Injector>,
}

impl DramModel {
    /// Build from the accelerator's DRAM structure (or defaults).
    pub fn new(kind: Option<&StructureKind>) -> DramModel {
        match kind {
            Some(StructureKind::Dram {
                latency,
                elems_per_cycle,
            }) => DramModel {
                latency: *latency as u64,
                elems_per_cycle: *elems_per_cycle,
                busy_until: 0,
                fills: 0,
                injector: None,
            },
            _ => DramModel {
                latency: 40,
                elems_per_cycle: 8,
                busy_until: 0,
                fills: 0,
                injector: None,
            },
        }
    }

    /// Arm fault injection for the DRAM channel (delay faults only).
    pub(crate) fn arm_faults(&mut self, plan: &FaultPlan) {
        let inj = Injector::new(plan, 0xd7a_0001, &[FaultClass::DramTimeout]);
        if inj.active() {
            self.injector = Some(inj);
        }
    }

    /// Injection tallies for the DRAM channel (zero when unarmed).
    pub(crate) fn fault_counts(&self) -> FaultCounts {
        self.injector.as_ref().map(|i| i.counts).unwrap_or_default()
    }

    /// Schedule a line fill starting no earlier than `cycle`; returns the
    /// ready cycle (latency + channel occupancy).
    pub fn fetch_line(&mut self, cycle: u64, line_elems: u32) -> u64 {
        let start = self.busy_until.max(cycle);
        let occupancy = (line_elems as u64)
            .div_ceil(self.elems_per_cycle as u64)
            .max(1);
        self.busy_until = start + occupancy;
        self.fills += 1;
        let mut ready = start + occupancy + self.latency;
        if let Some(inj) = self.injector.as_mut() {
            if inj.roll(FaultClass::DramTimeout) {
                ready += if inj.below(2) == 0 {
                    DELAY_MINOR
                } else {
                    DELAY_TIMEOUT
                };
            }
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_core::structure::Structure;

    fn spad(banks: u32, ports: u32) -> StructModel {
        let mut s = Structure::scratchpad("s", 1024);
        if let StructureKind::Scratchpad {
            banks: b,
            ports_per_bank: p,
            ..
        } = &mut s.kind
        {
            *b = banks;
            *p = ports;
        }
        StructModel::new(&s)
    }

    #[test]
    fn scratchpad_single_access() {
        let mut m = spad(1, 2);
        m.submit(MemRequest {
            id: 1,
            base: 0,
            n: 1,
            is_write: false,
        });
        let r = m.tick(0, None);
        assert_eq!(r.len(), 0, "latency 1: response valid next cycle");
        let r = m.tick(1, None);
        assert_eq!(
            r,
            vec![MemResponse {
                id: 1,
                at: 1,
                ecc: Ecc::Clean
            }]
        );
        assert!(m.is_idle());
    }

    #[test]
    fn tensor_request_coalesces() {
        let mut m = spad(4, 1);
        // 4 consecutive addrs stripe across 4 banks: all serviced in 1 cycle.
        m.submit(MemRequest {
            id: 7,
            base: 0,
            n: 4,
            is_write: false,
        });
        let r = m.tick(0, None);
        assert!(r.is_empty());
        let r = m.tick(1, None);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, 7);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut m = spad(1, 1);
        // 4 element txns on a single-ported single bank: 4 cycles to drain.
        m.submit(MemRequest {
            id: 9,
            base: 0,
            n: 4,
            is_write: true,
        });
        let mut done_at = None;
        for c in 0..10 {
            for r in m.tick(c, None) {
                done_at = Some(r.at);
            }
        }
        assert_eq!(
            done_at,
            Some(4),
            "last element serviced at cycle 3 + latency 1"
        );
        assert!(m.stats.conflict_stalls > 0);
    }

    #[test]
    fn more_banks_reduce_conflicts() {
        let run = |banks: u32| {
            let mut m = spad(banks, 1);
            m.submit(MemRequest {
                id: 1,
                base: 0,
                n: 16,
                is_write: false,
            });
            for c in 0..100 {
                if let Some(r) = m.tick(c, None).first() {
                    return r.at;
                }
            }
            u64::MAX
        };
        assert!(run(4) < run(1), "banking must speed up strided streams");
    }

    #[test]
    fn cache_hits_after_fill() {
        let mut cache = StructModel::new(&Structure::l1_cache("l1"));
        let mut dram = DramModel::new(None);
        cache.submit(MemRequest {
            id: 1,
            base: 0,
            n: 1,
            is_write: false,
        });
        let mut first_done = None;
        for c in 0..200 {
            for r in cache.tick(c, Some(&mut dram)) {
                first_done.get_or_insert(r.at);
            }
            if first_done.is_some() {
                break;
            }
        }
        let miss_time = first_done.unwrap();
        assert!(miss_time > 20, "first access misses to DRAM");
        assert_eq!(cache.stats.misses, 1);
        // Same line again: hit.
        cache.submit(MemRequest {
            id: 2,
            base: 1,
            n: 1,
            is_write: false,
        });
        let start = miss_time + 1;
        let mut second_done = None;
        for c in start..start + 50 {
            for r in cache.tick(c, Some(&mut dram)) {
                second_done.get_or_insert(r.at);
            }
            if second_done.is_some() {
                break;
            }
        }
        assert!(second_done.unwrap() - start <= 3, "second access hits");
        assert_eq!(cache.stats.hits, 1);
    }

    #[test]
    fn dram_bandwidth_occupancy() {
        let mut d = DramModel::new(None);
        let r1 = d.fetch_line(0, 16);
        let r2 = d.fetch_line(0, 16);
        assert!(r2 > r1, "second fill queues behind the first");
        assert_eq!(d.fills, 2);
    }

    #[test]
    fn cache_eviction_writes_back() {
        // Tiny cache: force evictions.
        let mut s = Structure::l1_cache("l1");
        if let StructureKind::Cache {
            capacity, assoc, ..
        } = &mut s.kind
        {
            *capacity = 64; // 4 lines of 16
            *assoc = 1;
        }
        let mut cache = StructModel::new(&s);
        let mut dram = DramModel::new(None);
        // Write two lines mapping to the same set (stride = sets*line).
        for (id, addr) in [(1u64, 0u64), (2, 64)] {
            cache.submit(MemRequest {
                id,
                base: addr,
                n: 1,
                is_write: true,
            });
            for c in 0..500 {
                if !cache.tick(c, Some(&mut dram)).is_empty() {
                    break;
                }
            }
        }
        assert!(cache.stats.writebacks >= 1, "dirty eviction writes back");
    }
}
