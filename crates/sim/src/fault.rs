//! Seeded, deterministic fault injection for the simulator.
//!
//! A [`FaultPlan`] in `SimConfig` arms one or more fault classes at a
//! parts-per-million rate. Every injection decision is drawn from a
//! splitmix64 stream derived from the plan's seed and a per-domain salt
//! (engine, each memory structure, the DRAM channel), so the same plan on
//! the same accelerator reproduces the same faults cycle-for-cycle — a
//! hard requirement for differential campaigns and for replaying a failure
//! found in the field.

use std::fmt;

/// An injectable fault class (the root cause, as opposed to
/// [`crate::error::FaultKind`], which names the observed symptom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Flip one bit of a token's value on a ready/valid edge.
    TokenBitFlip,
    /// Drop a token on a ready/valid edge (valid pulse lost).
    TokenDrop,
    /// Duplicate a token on a ready/valid edge (valid held one cycle too
    /// long).
    TokenDup,
    /// A node's output handshake sticks: valid never asserts again.
    StuckHandshake,
    /// Memory-bank ECC event on a response: correctable (scrubbed, logged)
    /// or uncorrectable (surfaces as a typed `Fault`).
    MemEcc,
    /// A memory/DRAM response is delayed — mildly (recoverable slowdown) or
    /// past any reasonable timeout (run hangs, watchdog reports it).
    DramTimeout,
}

impl FaultClass {
    /// All classes, in stable report order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::TokenBitFlip,
        FaultClass::TokenDrop,
        FaultClass::TokenDup,
        FaultClass::StuckHandshake,
        FaultClass::MemEcc,
        FaultClass::DramTimeout,
    ];

    /// Stable short name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::TokenBitFlip => "token-bit-flip",
            FaultClass::TokenDrop => "token-drop",
            FaultClass::TokenDup => "token-dup",
            FaultClass::StuckHandshake => "stuck-handshake",
            FaultClass::MemEcc => "mem-ecc",
            FaultClass::DramTimeout => "dram-timeout",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            FaultClass::TokenBitFlip => 0,
            FaultClass::TokenDrop => 1,
            FaultClass::TokenDup => 2,
            FaultClass::StuckHandshake => 3,
            FaultClass::MemEcc => 4,
            FaultClass::DramTimeout => 5,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One armed fault class with its rate and budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which class to inject.
    pub class: FaultClass,
    /// Injection probability per opportunity, in parts per million.
    pub rate_ppm: u32,
    /// Maximum injections across the run (0 = unlimited).
    pub max_events: u32,
}

/// A deterministic fault-injection schedule for one simulation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Master seed; every injection domain derives its stream from it.
    pub seed: u64,
    /// Armed classes. Empty = fault-free run (the default).
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A fault-free plan (the `SimConfig` default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan injecting at most one event of `class` at a moderate rate —
    /// the "single injected fault" of the differential property tests.
    pub fn single(class: FaultClass, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: vec![FaultSpec {
                class,
                rate_ppm: 2_000,
                max_events: 1,
            }],
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.iter().all(|s| s.rate_ppm == 0)
    }
}

/// Per-class injection tallies, reported through `SimStats` so that a run
/// that completes *despite* injected faults is never silently wrong — the
/// stats flag the corruption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Token bit-flips injected.
    pub token_bit_flip: u64,
    /// Tokens dropped.
    pub token_drop: u64,
    /// Tokens duplicated.
    pub token_dup: u64,
    /// Handshakes stuck.
    pub stuck_handshake: u64,
    /// ECC events injected (correctable and uncorrectable).
    pub mem_ecc: u64,
    /// Memory responses delayed or timed out.
    pub dram_timeout: u64,
}

impl FaultCounts {
    /// Total injections across all classes.
    pub fn total(&self) -> u64 {
        self.token_bit_flip
            + self.token_drop
            + self.token_dup
            + self.stuck_handshake
            + self.mem_ecc
            + self.dram_timeout
    }

    pub(crate) fn record(&mut self, class: FaultClass) {
        match class {
            FaultClass::TokenBitFlip => self.token_bit_flip += 1,
            FaultClass::TokenDrop => self.token_drop += 1,
            FaultClass::TokenDup => self.token_dup += 1,
            FaultClass::StuckHandshake => self.stuck_handshake += 1,
            FaultClass::MemEcc => self.mem_ecc += 1,
            FaultClass::DramTimeout => self.dram_timeout += 1,
        }
    }

    pub(crate) fn merge(&mut self, other: &FaultCounts) {
        self.token_bit_flip += other.token_bit_flip;
        self.token_drop += other.token_drop;
        self.token_dup += other.token_dup;
        self.stuck_handshake += other.stuck_handshake;
        self.mem_ecc += other.mem_ecc;
        self.dram_timeout += other.dram_timeout;
    }
}

/// ECC status of a memory response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ecc {
    /// No ECC event.
    #[default]
    Clean,
    /// Single-bit error, corrected in flight (logged, no functional effect).
    Corrected,
    /// Multi-bit error: data is unusable; the engine raises a typed fault.
    Uncorrectable,
}

/// Extra latency for a mildly delayed memory response.
pub(crate) const DELAY_MINOR: u64 = 1_000;
/// Extra latency for a timed-out response: far beyond any deadlock
/// watchdog, so the run hangs and the watchdog reports it.
pub(crate) const DELAY_TIMEOUT: u64 = 1_000_000_000;

/// splitmix64, shared with the tracer's sampling (`muir_core::rng`).
pub(crate) type Rng = muir_core::rng::SplitMix64;

/// One domain's injection state: a private RNG stream plus per-class rate,
/// remaining budget, and tallies.
#[derive(Debug, Clone)]
pub(crate) struct Injector {
    rng: Rng,
    rate: [u32; 6],
    left: [u32; 6], // u32::MAX = unlimited
    pub(crate) counts: FaultCounts,
}

impl Injector {
    /// Build an injector for a domain (engine, structure, DRAM channel),
    /// arming only the classes in `classes`. The salt decorrelates domains
    /// without requiring the plan to enumerate them.
    pub(crate) fn new(plan: &FaultPlan, salt: u64, classes: &[FaultClass]) -> Injector {
        let mut rate = [0u32; 6];
        let mut left = [u32::MAX; 6];
        for spec in &plan.specs {
            if !classes.contains(&spec.class) {
                continue;
            }
            let i = spec.class.index();
            rate[i] = spec.rate_ppm;
            left[i] = if spec.max_events == 0 {
                u32::MAX
            } else {
                spec.max_events
            };
        }
        Injector {
            rng: Rng::salted(plan.seed, salt),
            rate,
            left,
            counts: FaultCounts::default(),
        }
    }

    /// Whether any class is armed in this domain.
    pub(crate) fn active(&self) -> bool {
        self.rate.iter().any(|&r| r > 0)
    }

    /// Decide one injection opportunity for `class`; records the event and
    /// decrements the budget when it fires.
    pub(crate) fn roll(&mut self, class: FaultClass) -> bool {
        let i = class.index();
        if self.rate[i] == 0 || self.left[i] == 0 {
            return false;
        }
        if !self.rng.chance_ppm(self.rate[i]) {
            return false;
        }
        if self.left[i] != u32::MAX {
            self.left[i] -= 1;
        }
        self.counts.record(class);
        true
    }

    /// Auxiliary randomness for a fired event (bit index, severity, …).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_respects_budget_and_rate() {
        let plan = FaultPlan {
            seed: 7,
            specs: vec![FaultSpec {
                class: FaultClass::TokenDrop,
                rate_ppm: 1_000_000, // always
                max_events: 3,
            }],
        };
        let mut inj = Injector::new(&plan, 0, &[FaultClass::TokenDrop]);
        let fired: usize = (0..100).filter(|_| inj.roll(FaultClass::TokenDrop)).count();
        assert_eq!(fired, 3, "budget caps injections");
        assert_eq!(inj.counts.token_drop, 3);
        // A class not armed in this domain never fires.
        assert!(!(0..100).any(|_| inj.roll(FaultClass::MemEcc)));
    }

    #[test]
    fn domains_are_decorrelated_but_reproducible() {
        let plan = FaultPlan {
            seed: 99,
            specs: vec![FaultSpec {
                class: FaultClass::MemEcc,
                rate_ppm: 500_000,
                max_events: 0,
            }],
        };
        let pattern = |salt: u64| -> Vec<bool> {
            let mut inj = Injector::new(&plan, salt, &[FaultClass::MemEcc]);
            (0..64).map(|_| inj.roll(FaultClass::MemEcc)).collect()
        };
        assert_eq!(pattern(1), pattern(1), "same domain reproduces");
        assert_ne!(pattern(1), pattern(2), "different domains diverge");
    }

    #[test]
    fn single_plan_injects_at_most_once() {
        let plan = FaultPlan::single(FaultClass::TokenDrop, 5);
        let mut inj = Injector::new(&plan, 0, &[FaultClass::TokenDrop]);
        let fired: usize = (0..2_000_000)
            .filter(|_| inj.roll(FaultClass::TokenDrop))
            .count();
        assert!(fired <= 1, "{fired}");
    }
}
