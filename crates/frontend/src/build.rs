//! The scope-recursive translator from `mir` to the μIR graph.
//!
//! Stage 1 (Algorithm 1) and Stage 2 are fused into one recursive walk:
//! `build_scope` extracts child tasks (loops, detach regions, calls) first,
//! then lowers the remaining forward-CFG hyperblock to predicated dataflow.

use crate::{FrontendConfig, FrontendError};
use muir_core::accel::{Accelerator, ArgExpr, LoopSpec, ResultInit, TaskBlock, TaskId, TaskKind};
use muir_core::dataflow::{Dataflow, Junction, JunctionId, NodeId};
use muir_core::node::{Node, NodeKind, OpKind};
use muir_core::structure::{Structure, StructureId};
use muir_mir::analysis::{
    self, detach_region, expand_with_detach, loop_dependence_in, natural_loops, region_values,
    Affine, NaturalLoop,
};
use muir_mir::instr::{BlockId, CmpPred, ConstVal, FuncId, InstrId, MemObjId, Op, ValueRef};
use muir_mir::module::{Function, Module};
use muir_mir::types::{ScalarType, Type};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

fn ferr(msg: impl Into<String>) -> FrontendError {
    FrontendError {
        message: msg.into(),
    }
}

/// A value captured from the enclosing scope (a task-closure argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Capture {
    /// An instruction result of the enclosing function.
    Val(InstrId),
    /// A function argument of the enclosing function.
    Arg(u32),
}

/// The call interface of a built child task.
#[derive(Debug, Clone)]
struct ChildIface {
    task: TaskId,
    /// Parent-scope values to pass, in argument order (loop/detach tasks).
    captures: Vec<Capture>,
    /// Live-out instruction ids, in result-port order.
    results: Vec<InstrId>,
}

/// What kind of scope is being built.
#[derive(Debug, Clone)]
enum ScopeKind {
    /// A whole function body (the root, or a called function).
    Function,
    /// A natural loop (index into the function's loop list).
    Loop(usize),
    /// A Tapir detach region entered at `body`.
    Detach(BlockId),
}

/// Memory footprint used for program-order edges.
#[derive(Debug, Clone, Default)]
struct Footprint {
    reads: Vec<(MemObjId, Option<Affine>)>,
    writes: Vec<(MemObjId, Option<Affine>)>,
}

impl Footprint {
    fn whole(reads: &BTreeSet<MemObjId>, writes: &BTreeSet<MemObjId>) -> Footprint {
        Footprint {
            reads: reads.iter().map(|&o| (o, None)).collect(),
            writes: writes.iter().map(|&o| (o, None)).collect(),
        }
    }
}

/// Two same-iteration affine addresses provably never alias only when they
/// differ by a nonzero constant with identical strides and symbols.
fn same_iter_disjoint(a: &Option<Affine>, b: &Option<Affine>) -> bool {
    match (a, b) {
        (
            Some(Affine::Affine {
                scale: s1,
                konst: k1,
                syms: m1,
            }),
            Some(Affine::Affine {
                scale: s2,
                konst: k2,
                syms: m2,
            }),
        ) => s1 == s2 && m1 == m2 && k1 != k2,
        _ => false,
    }
}

fn conflicts(earlier: &Footprint, later: &Footprint) -> bool {
    let pair = |ws: &[(MemObjId, Option<Affine>)], rs: &[(MemObjId, Option<Affine>)]| {
        ws.iter().any(|(wo, wa)| {
            rs.iter()
                .any(|(ro, ra)| wo == ro && !same_iter_disjoint(wa, ra))
        })
    };
    pair(&earlier.writes, &later.reads)
        || pair(&earlier.writes, &later.writes)
        || pair(&earlier.reads, &later.writes)
}

/// Translation driver.
pub(crate) struct Frontend<'m> {
    module: &'m Module,
    config: &'m FrontendConfig,
    acc: Accelerator,
    /// Structure homing each memory object.
    placement: Vec<StructureId>,
    /// Natural loops per function.
    loops: Vec<Rc<Vec<NaturalLoop>>>,
    /// Whole-function memory footprints (reads, writes).
    func_fps: Vec<(BTreeSet<MemObjId>, BTreeSet<MemObjId>)>,
}

impl<'m> Frontend<'m> {
    pub(crate) fn new(
        module: &'m Module,
        config: &'m FrontendConfig,
    ) -> Result<Frontend<'m>, FrontendError> {
        muir_mir::verify::verify_module(module).map_err(|e| ferr(e.to_string()))?;
        if module.functions.is_empty() {
            return Err(ferr("module has no functions"));
        }
        let mut acc = Accelerator::new(module.name.clone());
        acc.object_info = module
            .mem_objects
            .iter()
            .map(|o| (o.len, o.read_only))
            .collect();

        // Baseline memory system (§6.4): shared scratchpad for small/local
        // objects, one L1 cache (64 KB) for large/global objects, an AXI
        // DRAM port behind everything.
        let mut spad = Structure::scratchpad("shared_spad", 0);
        let mut cache = Structure::l1_cache("l1");
        let mut spad_cap = 0u64;
        let mut spad_objs = Vec::new();
        let mut cache_objs = Vec::new();
        for (i, obj) in module.mem_objects.iter().enumerate() {
            if obj.len <= config.spad_threshold {
                spad_cap += obj.len;
                spad_objs.push(MemObjId(i as u32));
            } else {
                cache_objs.push(MemObjId(i as u32));
            }
        }
        if let muir_core::structure::StructureKind::Scratchpad { capacity, .. } = &mut spad.kind {
            *capacity = spad_cap;
        }
        for &o in &spad_objs {
            spad.serve(o);
        }
        for &o in &cache_objs {
            cache.serve(o);
        }
        let mut placement = vec![StructureId(0); module.mem_objects.len()];
        if !spad_objs.is_empty() {
            let sid = acc.add_structure(spad);
            for &o in &spad_objs {
                placement[o.0 as usize] = sid;
            }
        }
        if !cache_objs.is_empty() {
            let cid = acc.add_structure(cache);
            for &o in &cache_objs {
                placement[o.0 as usize] = cid;
            }
        }
        acc.add_structure(Structure::dram("axi"));

        let loops = module
            .functions
            .iter()
            .map(|f| Rc::new(natural_loops(f)))
            .collect::<Vec<_>>();
        let func_fps = compute_function_footprints(module);
        Ok(Frontend {
            module,
            config,
            acc,
            placement,
            loops,
            func_fps,
        })
    }

    pub(crate) fn run(mut self) -> Result<Accelerator, FrontendError> {
        let iface = self.build_scope(FuncId(0), ScopeKind::Function, "main".to_string(), None)?;
        self.acc.root = iface.task;
        muir_core::verify::verify_accelerator(&self.acc).map_err(|e| ferr(e.to_string()))?;
        Ok(self.acc)
    }

    /// Build one task from a scope of `fid`'s CFG; returns its interface.
    fn build_scope(
        &mut self,
        fid: FuncId,
        kind: ScopeKind,
        name: String,
        parent: Option<TaskId>,
    ) -> Result<ChildIface, FrontendError> {
        let module = self.module;
        let f = module.function(fid);
        let loops = Rc::clone(&self.loops[fid.0 as usize]);

        // Reserve the task id so children can connect to it.
        let tid = self
            .acc
            .add_task(TaskBlock::new(name.clone(), TaskKind::Region));
        if let Some(p) = parent {
            self.acc
                .connect_tasks(p, tid, self.config.child_queue_depth);
        }

        // --- Scope block set -------------------------------------------------
        let scope_blocks: BTreeSet<BlockId> = match &kind {
            ScopeKind::Function => f.block_ids().collect(),
            ScopeKind::Loop(li) => loops[*li].blocks.clone(),
            ScopeKind::Detach(body) => detach_region(f, *body),
        };
        let entry = match &kind {
            ScopeKind::Function => f.entry,
            ScopeKind::Loop(li) => loops[*li].header,
            ScopeKind::Detach(body) => *body,
        };
        let self_loop = match &kind {
            ScopeKind::Loop(li) => Some(*li),
            _ => None,
        };

        // --- Stage 1: extract direct child loops -----------------------------
        // Candidates: loops headquartered in this scope other than the scope
        // itself; direct ones have no candidate ancestor.
        let candidates: Vec<usize> = (0..loops.len())
            .filter(|&i| Some(i) != self_loop && scope_blocks.contains(&loops[i].header))
            .collect();
        let is_candidate = |i: usize| candidates.contains(&i);
        let direct_loops: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| {
                let mut p = loops[i].parent;
                loop {
                    match p {
                        Some(j) if Some(j) == self_loop => return true,
                        Some(j) if is_candidate(j) => return false,
                        Some(j) => p = loops[j].parent,
                        None => return true,
                    }
                }
            })
            .collect();

        let mut excluded: BTreeSet<BlockId> = BTreeSet::new();
        let mut loop_children: HashMap<usize, (ChildIface, BTreeSet<BlockId>)> = HashMap::new();
        for &li in &direct_loops {
            let subtree = expand_with_detach(f, loops[li].blocks.clone());
            let child_name = format!("{}_loop{}", name, loops[li].header.0);
            let iface = self.build_scope(fid, ScopeKind::Loop(li), child_name, Some(tid))?;
            excluded.extend(subtree.iter().copied());
            loop_children.insert(li, (iface, subtree));
        }

        // --- Stage 1: extract detach regions directly in this scope ----------
        let mut detach_children: HashMap<BlockId, (ChildIface, BTreeSet<BlockId>)> = HashMap::new();
        let t_candidate: Vec<BlockId> = scope_blocks
            .iter()
            .copied()
            .filter(|b| !excluded.contains(b))
            .collect();
        for &b in &t_candidate {
            if let Some(t) = f.terminator(b) {
                if let Op::Detach { body, .. } = t.op {
                    let region = expand_with_detach(f, detach_region(f, body));
                    let child_name = format!("{}_task{}", name, body.0);
                    let iface =
                        self.build_scope(fid, ScopeKind::Detach(body), child_name, Some(tid))?;
                    excluded.extend(region.iter().copied());
                    detach_children.insert(b, (iface, region));
                }
            }
        }

        let t_blocks: BTreeSet<BlockId> = scope_blocks
            .iter()
            .copied()
            .filter(|b| !excluded.contains(b))
            .collect();
        if !t_blocks.contains(&entry) {
            return Err(ferr(format!(
                "scope entry {entry} swallowed by a child region"
            )));
        }

        // --- Stage 2: lower the hyperblock ----------------------------------
        let sb = ScopeBuilder {
            fe: self,
            f,
            tid,
            kind: kind.clone(),
            loops: Rc::clone(&loops),
            entry,
            t_blocks,
            scope_blocks: scope_blocks.clone(),
            loop_children,
            detach_children,
            df: Dataflow::new(),
            captures: Vec::new(),
            capture_nodes: Vec::new(),
            value_map: HashMap::new(),
            const_map: HashMap::new(),
            edge_pred: HashMap::new(),
            block_pred_cache: HashMap::new(),
            junction_map: BTreeMap::new(),
            effects: Vec::new(),
            ret_value: None,
            iv_phi: None,
            acc_phis: Vec::new(),
        };
        sb.lower()
    }
}

/// Whole-function read/write object sets (including callees).
fn compute_function_footprints(m: &Module) -> Vec<(BTreeSet<MemObjId>, BTreeSet<MemObjId>)> {
    let n = m.functions.len();
    let mut fps = vec![(BTreeSet::new(), BTreeSet::new()); n];
    // Iterate to a fixpoint (handles call chains; recursion is not used).
    for _ in 0..n.max(1) {
        for (i, f) in m.functions.iter().enumerate() {
            let mut reads = BTreeSet::new();
            let mut writes = BTreeSet::new();
            for instr in &f.instrs {
                match &instr.op {
                    Op::Load { obj } => {
                        reads.insert(*obj);
                    }
                    Op::Store { obj } => {
                        writes.insert(*obj);
                    }
                    Op::Call { callee } => {
                        let (r, w) = fps[callee.0 as usize].clone();
                        reads.extend(r);
                        writes.extend(w);
                    }
                    _ => {}
                }
            }
            fps[i] = (reads, writes);
        }
    }
    fps
}

/// Read/write object sets of a block region (plus called functions).
fn region_footprint(
    f: &Function,
    blocks: &BTreeSet<BlockId>,
    func_fps: &[(BTreeSet<MemObjId>, BTreeSet<MemObjId>)],
) -> (BTreeSet<MemObjId>, BTreeSet<MemObjId>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    for &b in blocks {
        for (_id, instr) in f.block_instrs(b) {
            match &instr.op {
                Op::Load { obj } => {
                    reads.insert(*obj);
                }
                Op::Store { obj } => {
                    writes.insert(*obj);
                }
                Op::Call { callee } => {
                    let (r, w) = &func_fps[callee.0 as usize];
                    reads.extend(r.iter().copied());
                    writes.extend(w.iter().copied());
                }
                _ => {}
            }
        }
    }
    (reads, writes)
}

/// Per-scope lowering state.
struct ScopeBuilder<'a, 'm> {
    fe: &'a mut Frontend<'m>,
    f: &'m Function,
    tid: TaskId,
    kind: ScopeKind,
    loops: Rc<Vec<NaturalLoop>>,
    entry: BlockId,
    /// Blocks lowered inline in this task.
    t_blocks: BTreeSet<BlockId>,
    /// Full scope (inline + child subtrees), for liveness/affine analysis.
    scope_blocks: BTreeSet<BlockId>,
    loop_children: HashMap<usize, (ChildIface, BTreeSet<BlockId>)>,
    detach_children: HashMap<BlockId, (ChildIface, BTreeSet<BlockId>)>,
    df: Dataflow,
    captures: Vec<Capture>,
    capture_nodes: Vec<NodeId>,
    value_map: HashMap<InstrId, (NodeId, u16)>,
    const_map: HashMap<ConstKey, NodeId>,
    edge_pred: HashMap<(BlockId, BlockId), Pred>,
    block_pred_cache: HashMap<BlockId, Pred>,
    junction_map: BTreeMap<StructureId, JunctionId>,
    effects: Vec<(NodeId, Footprint, bool)>, // (node, footprint, is_spawn)
    ret_value: Option<ValueRef>,
    iv_phi: Option<InstrId>,
    acc_phis: Vec<InstrId>,
}

type Pred = Option<NodeId>;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConstKey {
    I(i64),
    F(u32),
    B(bool),
}

impl ScopeBuilder<'_, '_> {
    fn lower(mut self) -> Result<ChildIface, FrontendError> {
        // Loop scopes: pre-register the induction variable and carried
        // accumulators before anything resolves them.
        if let ScopeKind::Loop(li) = self.kind.clone() {
            self.prepare_loop_header(li)?;
        }
        let order = self.topo_units()?;
        for unit in order {
            match unit {
                Unit::Block(b) => self.lower_block(b)?,
                Unit::Loop(li) => self.emit_loop_call(li)?,
            }
        }
        self.finish()
    }

    // --- Loop header handling -------------------------------------------

    fn prepare_loop_header(&mut self, li: usize) -> Result<(), FrontendError> {
        let header = self.loops[li].header;
        let phis: Vec<InstrId> = self
            .f
            .block(header)
            .instrs
            .iter()
            .copied()
            .filter(|&i| matches!(self.f.instr(i).op, Op::Phi { .. }))
            .collect();
        let Some(&iv) = phis.first() else {
            return Err(ferr(format!("loop at {header} has no induction phi")));
        };
        self.iv_phi = Some(iv);
        let ivn = self
            .df
            .add_node(Node::new("i", NodeKind::IndVar, Type::I64));
        self.value_map.insert(iv, (ivn, 0));
        for &p in &phis[1..] {
            let ty = self.f.instr(p).ty.ok_or_else(|| ferr("untyped phi"))?;
            let m = self
                .df
                .add_node(Node::new(format!("acc_{}", p.0), NodeKind::Merge, ty));
            self.value_map.insert(p, (m, 0));
            self.acc_phis.push(p);
        }
        Ok(())
    }

    /// The φ operand arriving from outside the loop (init) and from the
    /// latch (update).
    fn phi_incoming(&self, phi: InstrId, li: usize) -> Result<(ValueRef, ValueRef), FrontendError> {
        let instr = self.f.instr(phi);
        let Op::Phi { preds } = &instr.op else {
            return Err(ferr("not a phi"));
        };
        let lp = &self.loops[li];
        let mut init = None;
        let mut update = None;
        for (v, p) in instr.operands.iter().zip(preds) {
            if lp.blocks.contains(p) {
                update = Some(*v);
            } else {
                init = Some(*v);
            }
        }
        match (init, update) {
            (Some(i), Some(u)) => Ok((i, u)),
            _ => Err(ferr(format!("phi {phi} is not a canonical loop phi"))),
        }
    }

    // --- Unit graph --------------------------------------------------------

    fn topo_units(&self) -> Result<Vec<Unit>, FrontendError> {
        // Unit ids: blocks then child loops.
        let mut units: Vec<Unit> = self.t_blocks.iter().map(|&b| Unit::Block(b)).collect();
        let loop_indices: Vec<usize> = self.loop_children.keys().copied().collect();
        units.extend(loop_indices.iter().map(|&li| Unit::Loop(li)));
        let index_of = |u: &Unit| units.iter().position(|x| x == u).expect("unit exists");

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
        for (ui, u) in units.iter().enumerate() {
            for t in self.unit_successors(u) {
                if t != Unit::Block(self.entry) {
                    succs[ui].push(index_of(&t));
                }
            }
        }
        let mut indeg = vec![0usize; units.len()];
        for ss in &succs {
            for &s in ss {
                indeg[s] += 1;
            }
        }
        let entry_idx = index_of(&Unit::Block(self.entry));
        let mut order = Vec::new();
        let mut work = vec![entry_idx];
        let mut seen = vec![false; units.len()];
        seen[entry_idx] = true;
        while let Some(u) = work.pop() {
            order.push(units[u].clone());
            for &s in &succs[u] {
                indeg[s] -= 1;
                if indeg[s] == 0 && !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        Ok(order)
    }

    fn unit_successors(&self, u: &Unit) -> Vec<Unit> {
        let map_target = |t: BlockId| -> Option<Unit> {
            if self.t_blocks.contains(&t) {
                Some(Unit::Block(t))
            } else {
                self.loop_children
                    .iter()
                    .find(|(li, _)| self.loops[**li].header == t)
                    .map(|(li, _)| Unit::Loop(*li))
            }
        };
        match u {
            Unit::Block(b) => {
                let Some(t) = self.f.terminator(*b) else {
                    return vec![];
                };
                let targets = match &t.op {
                    Op::Detach { cont, .. } => vec![*cont],
                    other => other.successors(),
                };
                targets.into_iter().filter_map(map_target).collect()
            }
            Unit::Loop(li) => {
                let subtree = &self.loop_children[li].1;
                let mut out = Vec::new();
                for &b in subtree {
                    for s in self.f.successors(b) {
                        if !subtree.contains(&s) {
                            if let Some(u) = map_target(s) {
                                if !out.contains(&u) {
                                    out.push(u);
                                }
                            }
                        }
                    }
                }
                out
            }
        }
    }

    // --- Predicates ---------------------------------------------------------

    fn block_pred(&mut self, b: BlockId) -> Pred {
        if b == self.entry {
            return None;
        }
        if let Some(p) = self.block_pred_cache.get(&b) {
            return *p;
        }
        let preds = self.f.predecessors();
        let mut contributions: Vec<Pred> = Vec::new();
        for p in preds[b.0 as usize].clone() {
            let key = if self.t_blocks.contains(&p) {
                (p, b)
            } else if let Some((li, _)) = self
                .loop_children
                .iter()
                .find(|(_, (_, subtree))| subtree.contains(&p))
                .map(|(li, c)| (*li, c))
            {
                (self.loops[li].header, b)
            } else {
                continue;
            };
            if let Some(ep) = self.edge_pred.get(&key) {
                contributions.push(*ep);
            }
        }
        // No incoming edges, or any edge with an unknown predicate, means
        // the block's own predicate is unknown.
        let result = if contributions.is_empty() || contributions.iter().any(|c| c.is_none()) {
            None
        } else {
            // OR-fold the predicate nodes.
            let mut it = contributions.into_iter().map(|c| c.expect("some"));
            let first = it.next().expect("nonempty");
            let folded = it.fold(first, |acc, n| {
                self.emit_bool_bin(muir_mir::instr::BinOp::Or, acc, n)
            });
            Some(folded)
        };
        self.block_pred_cache.insert(b, result);
        result
    }

    fn emit_bool_bin(&mut self, op: muir_mir::instr::BinOp, a: NodeId, b: NodeId) -> NodeId {
        let n = self.df.add_node(Node::new(
            format!("p_{}", op.mnemonic()),
            NodeKind::Compute(OpKind::Bin(op)),
            Type::BOOL,
        ));
        self.df.connect(a, 0, n, 0);
        self.df.connect(b, 0, n, 1);
        n
    }

    fn and_pred(&mut self, a: Pred, b: NodeId) -> NodeId {
        match a {
            None => b,
            Some(an) => self.emit_bool_bin(muir_mir::instr::BinOp::And, an, b),
        }
    }

    fn not_node(&mut self, c: NodeId) -> NodeId {
        let t = self.const_node(ConstVal::Bool(true));
        self.emit_bool_bin(muir_mir::instr::BinOp::Xor, c, t)
    }

    // --- Value resolution ----------------------------------------------------

    fn const_node(&mut self, c: ConstVal) -> NodeId {
        let key = match c {
            ConstVal::Int(i) => ConstKey::I(i),
            ConstVal::F32(f) => ConstKey::F(f.to_bits()),
            ConstVal::Bool(b) => ConstKey::B(b),
        };
        if let Some(&n) = self.const_map.get(&key) {
            return n;
        }
        let ty = match c {
            ConstVal::Int(_) => Type::I64,
            ConstVal::F32(_) => Type::F32,
            ConstVal::Bool(_) => Type::BOOL,
        };
        let n = self
            .df
            .add_node(Node::new(format!("c_{c}"), NodeKind::Const(c), ty));
        self.const_map.insert(key, n);
        n
    }

    fn capture(&mut self, c: Capture) -> NodeId {
        if let Some(pos) = self.captures.iter().position(|&x| x == c) {
            return self.capture_nodes[pos];
        }
        let (ty, label) = match c {
            Capture::Val(d) => (
                self.f.instr(d).ty.unwrap_or(Type::I64),
                format!("in_v{}", d.0),
            ),
            Capture::Arg(n) => (self.f.params[n as usize], format!("in_arg{n}")),
        };
        let idx = self.captures.len() as u32;
        let node = self
            .df
            .add_node(Node::new(label, NodeKind::Input { index: idx }, ty));
        self.captures.push(c);
        self.capture_nodes.push(node);
        node
    }

    fn resolve(&mut self, v: ValueRef) -> Result<(NodeId, u16), FrontendError> {
        match v {
            ValueRef::Const(c) => Ok((self.const_node(c), 0)),
            ValueRef::Arg(n) => Ok((self.capture(Capture::Arg(n)), 0)),
            ValueRef::Instr(d) => {
                if let Some(&m) = self.value_map.get(&d) {
                    return Ok(m);
                }
                let instr = self.f.instr(d);
                let in_t = self.t_blocks.contains(&instr.block);
                if in_t && is_pure(&instr.op) {
                    return self.translate_pure(d);
                }
                if self.scope_blocks.contains(&instr.block) {
                    return Err(ferr(format!(
                        "use of {d} ({}) from an unlowered child region — missing live-out?",
                        instr.op.mnemonic()
                    )));
                }
                Ok((self.capture(Capture::Val(d)), 0))
            }
        }
    }

    fn translate_pure(&mut self, d: InstrId) -> Result<(NodeId, u16), FrontendError> {
        let instr = self.f.instr(d).clone();
        let node = match &instr.op {
            Op::Bin(b) => self.emit_compute(d, OpKind::Bin(*b), &instr)?,
            Op::Un(u) => self.emit_compute(d, OpKind::Un(*u), &instr)?,
            Op::Cmp(p) => self.emit_compute(d, OpKind::Cmp(*p), &instr)?,
            Op::Select => self.emit_compute(d, OpKind::Select, &instr)?,
            Op::Cast(c) => self.emit_compute(d, OpKind::Cast(*c), &instr)?,
            Op::Tensor(t, s) => self.emit_compute(d, OpKind::Tensor(*t, *s), &instr)?,
            Op::Phi { preds } => self.translate_phi(d, &instr, preds)?,
            other => {
                return Err(ferr(format!(
                    "internal: lazy translation of non-pure op {}",
                    other.mnemonic()
                )))
            }
        };
        self.value_map.insert(d, (node, 0));
        Ok((node, 0))
    }

    fn emit_compute(
        &mut self,
        d: InstrId,
        op: OpKind,
        instr: &muir_mir::instr::Instr,
    ) -> Result<NodeId, FrontendError> {
        let ty = instr.ty.ok_or_else(|| ferr("untyped compute op"))?;
        let n = self.df.add_node(Node::new(
            format!("{}_{}", op.mnemonic().replace(['<', '>', '.'], "_"), d.0),
            NodeKind::Compute(op),
            ty,
        ));
        for (i, v) in instr.operands.iter().enumerate() {
            let (src, port) = self.resolve(*v)?;
            self.df.connect(src, port, n, i as u16);
        }
        Ok(n)
    }

    /// Forward-CFG φ → select chain over the incoming edge predicates.
    fn translate_phi(
        &mut self,
        d: InstrId,
        instr: &muir_mir::instr::Instr,
        preds: &[BlockId],
    ) -> Result<NodeId, FrontendError> {
        let ty = instr.ty.ok_or_else(|| ferr("untyped phi"))?;
        let b = instr.block;
        let mut incoming: Vec<(ValueRef, Pred)> = Vec::new();
        for (v, p) in instr.operands.iter().zip(preds) {
            let ep = self.edge_pred.get(&(*p, b)).copied().unwrap_or(None);
            incoming.push((*v, ep));
        }
        // Start from an always-true incoming if one exists, otherwise the
        // first; select the others in on their predicates.
        let default_idx = incoming.iter().position(|(_, p)| p.is_none()).unwrap_or(0);
        let (dv, _) = incoming[default_idx];
        let (mut acc, mut accp) = self.resolve(dv)?;
        for (i, (v, p)) in incoming.iter().enumerate() {
            if i == default_idx {
                continue;
            }
            let Some(pn) = *p else {
                // Two always-true incomings: CFG would be ill-formed; take
                // the default.
                continue;
            };
            let (vn, vp) = self.resolve(*v)?;
            let sel = self.df.add_node(Node::new(
                format!("phi_{}", d.0),
                NodeKind::Compute(OpKind::Select),
                ty,
            ));
            self.df.connect(pn, 0, sel, 0);
            self.df.connect(vn, vp, sel, 1);
            self.df.connect(acc, accp, sel, 2);
            acc = sel;
            accp = 0;
        }
        Ok(acc)
    }

    // --- Effectful lowering ---------------------------------------------------

    fn junction_for(&mut self, obj: MemObjId) -> JunctionId {
        let sid = self.fe.placement[obj.0 as usize];
        if let Some(&j) = self.junction_map.get(&sid) {
            return j;
        }
        let j = self.df.add_junction(Junction::new(sid, 2, 1));
        self.junction_map.insert(sid, j);
        self.fe.acc.connect_mem(self.tid, j, sid);
        j
    }

    fn addr_affine(&self, addr: ValueRef) -> Option<Affine> {
        let iv = self.iv_phi.unwrap_or(InstrId(u32::MAX));
        let lp = NaturalLoop {
            header: self.entry,
            blocks: self.scope_blocks.clone(),
            latches: vec![],
            depth: 1,
            parent: None,
        };
        match analysis::affine_of(self.f, addr, iv, &lp) {
            Affine::Opaque => None,
            a => Some(a),
        }
    }

    fn add_order_edges(&mut self, node: NodeId, fp: &Footprint, is_spawn: bool) {
        let mut edges = Vec::new();
        for (prior, pfp, pspawn) in &self.effects {
            if *pspawn && is_spawn {
                continue; // Cilk spawns are unordered among themselves.
            }
            if conflicts(pfp, fp) {
                edges.push(*prior);
            }
        }
        for e in edges {
            self.df.connect_order(e, node);
        }
        self.effects.push((node, fp.clone(), is_spawn));
    }

    fn lower_block(&mut self, b: BlockId) -> Result<(), FrontendError> {
        let pred = self.block_pred(b);
        let instr_ids: Vec<InstrId> = self.f.block(b).instrs.clone();
        for iid in instr_ids {
            if self.value_map.contains_key(&iid) {
                continue; // pre-registered loop header φ
            }
            let instr = self.f.instr(iid).clone();
            match &instr.op {
                Op::Load { obj } => {
                    let ty = instr.ty.ok_or_else(|| ferr("untyped load"))?;
                    let j = self.junction_for(*obj);
                    let predicated = pred.is_some();
                    let n = self.df.add_node(Node::new(
                        format!("ld_{}", iid.0),
                        NodeKind::Load {
                            obj: *obj,
                            junction: j,
                            predicated,
                        },
                        ty,
                    ));
                    let (a, ap) = self.resolve(instr.operands[0])?;
                    self.df.connect(a, ap, n, 0);
                    if let Some(pn) = pred {
                        self.df.connect(pn, 0, n, 1);
                    }
                    self.df.register_reader(j, n);
                    self.value_map.insert(iid, (n, 0));
                    let fp = Footprint {
                        reads: vec![(*obj, self.addr_affine(instr.operands[0]))],
                        writes: vec![],
                    };
                    self.add_order_edges(n, &fp, false);
                }
                Op::Store { obj } => {
                    let vty = self
                        .value_type(instr.operands[1])
                        .unwrap_or(Type::Scalar(ScalarType::F32));
                    let j = self.junction_for(*obj);
                    let predicated = pred.is_some();
                    let n = self.df.add_node(Node::new(
                        format!("st_{}", iid.0),
                        NodeKind::Store {
                            obj: *obj,
                            junction: j,
                            predicated,
                        },
                        vty,
                    ));
                    let (a, ap) = self.resolve(instr.operands[0])?;
                    let (v, vp) = self.resolve(instr.operands[1])?;
                    self.df.connect(a, ap, n, 0);
                    self.df.connect(v, vp, n, 1);
                    if let Some(pn) = pred {
                        self.df.connect(pn, 0, n, 2);
                    }
                    self.df.register_writer(j, n);
                    let fp = Footprint {
                        reads: vec![],
                        writes: vec![(*obj, self.addr_affine(instr.operands[0]))],
                    };
                    self.add_order_edges(n, &fp, false);
                }
                Op::Call { callee } => {
                    // Function call: build a dedicated child task per call
                    // site (each call site is a hardware instance).
                    let fname = self.fe.module.function(*callee).name.clone();
                    let iface = self.fe.build_scope(
                        *callee,
                        ScopeKind::Function,
                        format!("{fname}_{}", iid.0),
                        Some(self.tid),
                    )?;
                    let callee_task = iface.task;
                    let predicated = pred.is_some();
                    let n = self.df.add_node(Node::new(
                        format!("call_{fname}"),
                        NodeKind::TaskCall {
                            callee: callee_task,
                            predicated,
                            spawn: false,
                        },
                        instr.ty.unwrap_or(Type::BOOL),
                    ));
                    for (i, v) in instr.operands.iter().enumerate() {
                        let (src, sp) = self.resolve(*v)?;
                        self.df.connect(src, sp, n, i as u16);
                    }
                    if let Some(pn) = pred {
                        self.df.connect(pn, 0, n, instr.operands.len() as u16);
                    }
                    if instr.ty.is_some() {
                        self.value_map.insert(iid, (n, 0));
                    }
                    let (r, w) = self.fe.func_fps[callee.0 as usize].clone();
                    let fp = Footprint::whole(&r, &w);
                    self.add_order_edges(n, &fp, false);
                }
                Op::Br { target } => {
                    self.edge_pred.insert((b, *target), pred);
                }
                Op::CondBr { t, f: fb } => {
                    // Loop-scope header check: the in-scope direction is
                    // unconditional (the sequencer admits only valid
                    // iterations).
                    let is_header_check =
                        matches!(self.kind, ScopeKind::Loop(_)) && b == self.entry;
                    if is_header_check {
                        let in_scope = if self.in_unit_graph(*t) { *t } else { *fb };
                        self.edge_pred.insert((b, in_scope), pred);
                    } else {
                        let (c, cp) = self.resolve(instr.operands[0])?;
                        debug_assert_eq!(cp, 0);
                        let tp = self.and_pred(pred, c);
                        let nc = self.not_node(c);
                        let fp_ = self.and_pred(pred, nc);
                        self.edge_pred.insert((b, *t), Some(tp));
                        self.edge_pred.insert((b, *fb), Some(fp_));
                    }
                }
                Op::Detach { body, cont } => {
                    let (iface, _region) = self
                        .detach_children
                        .get(&b)
                        .cloned()
                        .ok_or_else(|| ferr(format!("detach at {b} has no child task")))?;
                    let _ = body;
                    let callee = iface.task;
                    let nargs = iface.captures.len();
                    let predicated = pred.is_some();
                    let n = self.df.add_node(Node::new(
                        format!("spawn_{}", b.0),
                        NodeKind::TaskCall {
                            callee,
                            predicated,
                            spawn: true,
                        },
                        Type::I64,
                    ));
                    for (i, c) in iface.captures.iter().enumerate() {
                        let v = match c {
                            Capture::Val(d) => ValueRef::Instr(*d),
                            Capture::Arg(a) => ValueRef::Arg(*a),
                        };
                        let (src, sp) = self.resolve(v)?;
                        self.df.connect(src, sp, n, i as u16);
                    }
                    if let Some(pn) = pred {
                        self.df.connect(pn, 0, n, nargs as u16);
                    }
                    for (k, r) in iface.results.iter().enumerate() {
                        self.value_map.insert(*r, (n, k as u16));
                    }
                    let (r, w) =
                        region_footprint(self.f, &self.detach_children[&b].1, &self.fe.func_fps);
                    let fp = Footprint::whole(&r, &w);
                    self.add_order_edges(n, &fp, true);
                    self.edge_pred.insert((b, *cont), pred);
                }
                Op::Reattach { .. } => {}
                Op::Sync { cont } => {
                    self.edge_pred.insert((b, *cont), pred);
                }
                Op::Ret => {
                    if pred.is_some() {
                        return Err(ferr("predicated return is not supported"));
                    }
                    if self.ret_value.is_some() && !instr.operands.is_empty() {
                        return Err(ferr("multiple returns in one region"));
                    }
                    self.ret_value = instr.operands.first().copied();
                }
                // Pure ops translate lazily on first use.
                _ => {}
            }
        }
        Ok(())
    }

    fn in_unit_graph(&self, b: BlockId) -> bool {
        self.t_blocks.contains(&b)
            || self
                .loop_children
                .iter()
                .any(|(li, _)| self.loops[*li].header == b)
    }

    fn value_type(&self, v: ValueRef) -> Option<Type> {
        match v {
            ValueRef::Instr(d) => self.f.instr(d).ty,
            ValueRef::Arg(n) => self.f.params.get(n as usize).copied(),
            ValueRef::Const(ConstVal::Int(_)) => Some(Type::I64),
            ValueRef::Const(ConstVal::F32(_)) => Some(Type::F32),
            ValueRef::Const(ConstVal::Bool(_)) => Some(Type::BOOL),
        }
    }

    fn emit_loop_call(&mut self, li: usize) -> Result<(), FrontendError> {
        let header = self.loops[li].header;
        let pred = self.block_pred(header);
        let (iface, subtree) = self.loop_children[&li].clone();
        let callee = iface.task;
        let nargs = iface.captures.len();
        let predicated = pred.is_some();
        let n = self.df.add_node(Node::new(
            format!("loop_call_{}", header.0),
            NodeKind::TaskCall {
                callee,
                predicated,
                spawn: false,
            },
            Type::I64,
        ));
        for (i, c) in iface.captures.iter().enumerate() {
            let v = match c {
                Capture::Val(d) => ValueRef::Instr(*d),
                Capture::Arg(a) => ValueRef::Arg(*a),
            };
            let (src, sp) = self.resolve(v)?;
            self.df.connect(src, sp, n, i as u16);
        }
        if let Some(pn) = pred {
            self.df.connect(pn, 0, n, nargs as u16);
        }
        for (k, r) in iface.results.iter().enumerate() {
            self.value_map.insert(*r, (n, k as u16));
        }
        // Successor blocks of the loop inherit the call predicate.
        for &b in &subtree {
            for s in self.f.successors(b) {
                if !subtree.contains(&s) {
                    self.edge_pred.insert((header, s), pred);
                }
            }
        }
        let (r, w) = region_footprint(self.f, &subtree, &self.fe.func_fps);
        let fp = Footprint::whole(&r, &w);
        self.add_order_edges(n, &fp, false);
        Ok(())
    }

    // --- Finalization -----------------------------------------------------

    fn finish(mut self) -> Result<ChildIface, FrontendError> {
        let (results, kind, inits) = match self.kind.clone() {
            ScopeKind::Loop(li) => {
                let rv = region_values(
                    self.f,
                    &expand_with_detach(self.f, self.loops[li].blocks.clone()),
                );
                let results: Vec<InstrId> = rv.out_values.iter().copied().collect();
                // Wire Output: the per-iteration value of each result.
                let out_ty = results
                    .first()
                    .and_then(|r| self.f.instr(*r).ty)
                    .unwrap_or(Type::BOOL);
                let out = self.df.add_node(Node::new("out", NodeKind::Output, out_ty));
                let mut inits: Vec<Option<ResultInit>> = Vec::new();
                for (k, r) in results.iter().enumerate() {
                    let (src, sp) = if self.acc_phis.contains(r) {
                        let (_, update) = self.phi_incoming(*r, li)?;
                        self.resolve(update)?
                    } else {
                        self.resolve(ValueRef::Instr(*r))?
                    };
                    self.df.connect(src, sp, out, k as u16);
                    // Zero-trip fallback.
                    if self.acc_phis.contains(r) {
                        let (init, _) = self.phi_incoming(*r, li)?;
                        inits.push(Some(match init {
                            ValueRef::Const(c) => ResultInit::Const(c),
                            ValueRef::Instr(d) => {
                                let node = self.capture(Capture::Val(d));
                                let idx = self
                                    .capture_nodes
                                    .iter()
                                    .position(|&x| x == node)
                                    .expect("capture exists");
                                ResultInit::Arg(idx as u32)
                            }
                            ValueRef::Arg(a) => {
                                let node = self.capture(Capture::Arg(a));
                                let idx = self
                                    .capture_nodes
                                    .iter()
                                    .position(|&x| x == node)
                                    .expect("capture exists");
                                ResultInit::Arg(idx as u32)
                            }
                        }));
                    } else {
                        inits.push(None);
                    }
                }
                // Patch feedback edges for carried accumulators.
                for p in self.acc_phis.clone() {
                    let (init, update) = self.phi_incoming(p, li)?;
                    let merge = self.value_map[&p].0;
                    let (in_, ip) = self.resolve(init)?;
                    self.df.connect(in_, ip, merge, 0);
                    let (up, upp) = self.resolve(update)?;
                    self.df.connect_feedback(up, upp, merge);
                }
                // Canonical loop bounds.
                let spec = self.extract_loop_spec(li)?;
                let dep = loop_dependence_in(self.fe.module, self.f, &self.loops[li]);
                (
                    results,
                    TaskKind::Loop {
                        spec,
                        serial: !dep.parallel,
                    },
                    inits,
                )
            }
            ScopeKind::Function | ScopeKind::Detach(_) => {
                let mut results = Vec::new();
                let out_ty = self
                    .ret_value
                    .and_then(|v| self.value_type(v))
                    .unwrap_or(Type::BOOL);
                let out = self.df.add_node(Node::new("out", NodeKind::Output, out_ty));
                if let Some(rv) = self.ret_value {
                    let (src, sp) = self.resolve(rv)?;
                    self.df.connect(src, sp, out, 0);
                    if let ValueRef::Instr(d) = rv {
                        results.push(d);
                    } else {
                        // Constant/arg return: still one result port. Use a
                        // sentinel id that no parent will look up.
                        results.push(InstrId(u32::MAX));
                    }
                }
                (
                    results,
                    TaskKind::Region,
                    vec![None; usize::from(self.ret_value.is_some())],
                )
            }
        };

        let num_results = match &kind {
            TaskKind::Region => u32::from(self.ret_value.is_some()),
            TaskKind::Loop { .. } => results.len() as u32,
        };
        let mut task = TaskBlock::new(self.fe.acc.task(self.tid).name.clone(), kind);
        task.dataflow = self.df;
        task.num_args = self.captures.len() as u32;
        task.num_results = num_results;
        task.loop_result_inits = inits;
        self.fe.acc.tasks[self.tid.0 as usize] = task;
        Ok(ChildIface {
            task: self.tid,
            captures: self.captures,
            results,
        })
    }

    fn extract_loop_spec(&mut self, li: usize) -> Result<LoopSpec, FrontendError> {
        let iv = self
            .iv_phi
            .ok_or_else(|| ferr("loop without induction variable"))?;
        let (lo_v, update) = self.phi_incoming(iv, li)?;
        // Step from `i_next = add(i, const)`.
        let step = match update {
            ValueRef::Instr(d) => {
                let instr = self.f.instr(d);
                match (&instr.op, instr.operands.as_slice()) {
                    (Op::Bin(muir_mir::instr::BinOp::Add), [a, b]) => {
                        let k = match (a, b) {
                            (ValueRef::Instr(x), ValueRef::Const(ConstVal::Int(k))) if *x == iv => {
                                Some(*k)
                            }
                            (ValueRef::Const(ConstVal::Int(k)), ValueRef::Instr(x)) if *x == iv => {
                                Some(*k)
                            }
                            _ => None,
                        };
                        k.ok_or_else(|| ferr("non-canonical loop increment"))?
                    }
                    _ => return Err(ferr("non-canonical loop increment")),
                }
            }
            _ => return Err(ferr("non-canonical loop increment")),
        };
        if step <= 0 {
            return Err(ferr("loop step must be positive"));
        }
        // Bound from the header's `icmp lt iv, hi` condbr.
        let header = self.loops[li].header;
        let term = self
            .f
            .terminator(header)
            .ok_or_else(|| ferr("loop header lacks terminator"))?;
        let Op::CondBr { .. } = term.op else {
            return Err(ferr("loop header terminator is not a condbr"));
        };
        let cond = term.operands[0];
        let hi_v = match cond {
            ValueRef::Instr(c) => {
                let ci = self.f.instr(c);
                match (&ci.op, ci.operands.as_slice()) {
                    (Op::Cmp(CmpPred::Lt), [a, b]) if *a == ValueRef::Instr(iv) => *b,
                    _ => return Err(ferr("loop bound is not `icmp lt iv, hi`")),
                }
            }
            _ => return Err(ferr("loop condition is not an instruction")),
        };
        let lo = self.arg_expr(lo_v)?;
        let hi = self.arg_expr(hi_v)?;
        Ok(LoopSpec { lo, hi, step })
    }

    fn arg_expr(&mut self, v: ValueRef) -> Result<ArgExpr, FrontendError> {
        match v {
            ValueRef::Const(ConstVal::Int(k)) => Ok(ArgExpr::Const(k)),
            ValueRef::Const(_) => Err(ferr("non-integer loop bound")),
            ValueRef::Instr(d) => {
                let node = self.capture(Capture::Val(d));
                let idx = self
                    .capture_nodes
                    .iter()
                    .position(|&x| x == node)
                    .expect("capture exists");
                Ok(ArgExpr::Arg(idx as u32))
            }
            ValueRef::Arg(a) => {
                let node = self.capture(Capture::Arg(a));
                let idx = self
                    .capture_nodes
                    .iter()
                    .position(|&x| x == node)
                    .expect("capture exists");
                Ok(ArgExpr::Arg(idx as u32))
            }
        }
    }
}

fn is_pure(op: &Op) -> bool {
    matches!(
        op,
        Op::Bin(_)
            | Op::Un(_)
            | Op::Cmp(_)
            | Op::Select
            | Op::Cast(_)
            | Op::Phi { .. }
            | Op::Tensor(..)
    )
}

/// A topological-ordering unit: an inline block or a child-loop call site.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Unit {
    Block(BlockId),
    Loop(usize),
}
