//! Tensor-op graph front door (§6.3's Tensorflow path, made first-class).
//!
//! A [`TensorGraph`] is a small deterministic DAG of whole-tensor ops —
//! `matmul`, `conv`, `add`, `mul`, `relu`, `reduce`, `softmax` — over
//! rank-2 f32 tensors, with a text format, shape inference, a content
//! hash, and a lowering into `muir-mir` loop nests built on the Tensor2D
//! tile intrinsics. The lowered module translates through the ordinary
//! frontend into a verified `Accelerator` and seals like any other
//! workload.
//!
//! # Text format
//!
//! ```text
//! graph attn
//! input q : f32[8,8]
//! input kt : f32[8,8]
//! input v : f32[8,8]
//! %s = matmul q, kt
//! %p = softmax %s
//! %o = matmul %p, v
//! output %o
//! ```
//!
//! Inputs are referenced by bare name, nodes by `%name`; forward
//! references are allowed (the verifier topologically sorts and rejects
//! cycles). `;` starts a comment. The printer emits exactly this form,
//! so `parse ∘ print` is the identity on canonical text.
//!
//! # Lowering contract
//!
//! Tensors are row-major in memory, one `muir-mir` memory object per
//! graph input and per materialized node (the graph output's object is
//! always named `out`). Because `load_tile` fetches *consecutive*
//! elements, every tile the lowering issues is a `1×T` row strip with
//! `T` the largest divisor of the row width ≤ `max_tile` (8, the databox
//! width):
//!
//! * `matmul` transposes its right operand into an internal `*_bt`
//!   buffer, then forms each output element as a chain of `tensor.conv`
//!   row-dot-products;
//! * `conv` (valid, stride 1) accumulates one `tensor.conv` per kernel
//!   row strip;
//! * `add`/`mul`/`relu` stream `1×T` tiles through the element-wise
//!   units; `reduce` folds `tensor.reduce` partials; `softmax` applies
//!   `tensor.softmax` per row when the row fits one tile and otherwise
//!   falls back to a scalar exp/sum/divide pass.
//!
//! Ahead of μopt, a graph-level fusion step folds a single-consumer
//! `relu` into its producer's store loop, eliminating the intermediate
//! buffer entirely (the tile- or scalar-level ReLU rides the producer's
//! store).

use crate::{translate, FrontendConfig, FrontendError};
use muir_core::accel::Accelerator;
use muir_core::ContentHasher;
use muir_mir::builder::FunctionBuilder;
use muir_mir::instr::{MemObjId, TensorOp, ValueRef};
use muir_mir::module::Module;
use muir_mir::types::{ScalarType, TensorShape, Type};
use std::collections::BTreeMap;
use std::fmt;

/// Widest row strip the databox fetches in one request (elements).
pub const MAX_TILE: usize = 8;

/// Largest tensor dimension the front door accepts. Keeps lowered
/// memory objects within the simulator's comfortable range.
pub const MAX_DIM: usize = 64;

/// Typed failure codes, stable for tooling (`E-TENSOR-*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorCode {
    /// Malformed text.
    Parse,
    /// Reference to an unknown input or node.
    Undef,
    /// Wrong operand count for an op.
    Arity,
    /// Tensor type is not rank-2 (`f32[R,C]`).
    Rank,
    /// Dimensions incompatible (or out of range) for an op.
    Shape,
    /// Element type unsupported (only `f32`).
    Type,
    /// The node references form a cycle.
    Cycle,
}

impl TensorCode {
    /// The stable error-code string.
    pub fn as_str(self) -> &'static str {
        match self {
            TensorCode::Parse => "E-TENSOR-PARSE",
            TensorCode::Undef => "E-TENSOR-UNDEF",
            TensorCode::Arity => "E-TENSOR-ARITY",
            TensorCode::Rank => "E-TENSOR-RANK",
            TensorCode::Shape => "E-TENSOR-SHAPE",
            TensorCode::Type => "E-TENSOR-TYPE",
            TensorCode::Cycle => "E-TENSOR-CYCLE",
        }
    }
}

/// A tensor-graph failure: typed code plus human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorError {
    /// Stable error class.
    pub code: TensorCode,
    /// What went wrong, with names and dimensions.
    pub message: String,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for TensorError {}

fn terr(code: TensorCode, message: impl Into<String>) -> TensorError {
    TensorError {
        code,
        message: message.into(),
    }
}

/// Rank-2 tensor dimensions (rows × cols).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Row count (≥ 1).
    pub rows: usize,
    /// Column count (≥ 1).
    pub cols: usize,
}

impl Dims {
    /// `rows × cols` dims.
    pub fn new(rows: usize, cols: usize) -> Dims {
        Dims { rows, cols }
    }

    /// Total element count.
    pub fn elems(self) -> usize {
        self.rows * self.cols
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f32[{},{}]", self.rows, self.cols)
    }
}

/// Whole-tensor graph ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphOp {
    /// `[m,k] × [k,n] → [m,n]`.
    MatMul,
    /// Valid 2-D convolution, stride 1: `[h,w] * [kh,kw] → [h-kh+1,w-kw+1]`.
    Conv,
    /// Element-wise sum of equal shapes.
    Add,
    /// Element-wise (Hadamard) product of equal shapes.
    Mul,
    /// Element-wise `max(x, 0)`.
    Relu,
    /// Sum of every element: `[h,w] → [1,1]`.
    Reduce,
    /// Row-wise softmax (normalizes each row independently).
    Softmax,
}

impl GraphOp {
    /// Text-format mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GraphOp::MatMul => "matmul",
            GraphOp::Conv => "conv",
            GraphOp::Add => "add",
            GraphOp::Mul => "mul",
            GraphOp::Relu => "relu",
            GraphOp::Reduce => "reduce",
            GraphOp::Softmax => "softmax",
        }
    }

    fn from_mnemonic(s: &str) -> Option<GraphOp> {
        Some(match s {
            "matmul" => GraphOp::MatMul,
            "conv" => GraphOp::Conv,
            "add" => GraphOp::Add,
            "mul" => GraphOp::Mul,
            "relu" => GraphOp::Relu,
            "reduce" => GraphOp::Reduce,
            "softmax" => GraphOp::Softmax,
            _ => return None,
        })
    }

    /// Operand count.
    pub fn arity(self) -> usize {
        match self {
            GraphOp::MatMul | GraphOp::Conv | GraphOp::Add | GraphOp::Mul => 2,
            GraphOp::Relu | GraphOp::Reduce | GraphOp::Softmax => 1,
        }
    }
}

/// A reference to a graph value: an input or another node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphRef {
    /// Index into [`TensorGraph::inputs`].
    Input(usize),
    /// Index into [`TensorGraph::nodes`].
    Node(usize),
}

/// A named graph input tensor.
#[derive(Debug, Clone)]
pub struct GraphInput {
    /// Bare identifier.
    pub name: String,
    /// Declared dimensions.
    pub dims: Dims,
}

/// One op node.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// `%name` identifier.
    pub name: String,
    /// The op.
    pub op: GraphOp,
    /// Operands, in op order.
    pub args: Vec<GraphRef>,
    /// Inferred result dimensions.
    pub dims: Dims,
}

/// A verified tensor-op DAG: shape-inferred, acyclic, single output.
#[derive(Debug, Clone)]
pub struct TensorGraph {
    /// Graph name (becomes the lowered module name).
    pub name: String,
    /// Input tensors, in declaration order.
    pub inputs: Vec<GraphInput>,
    /// Op nodes, in declaration order (may reference forward).
    pub nodes: Vec<GraphNode>,
    /// Index of the output node.
    pub output: usize,
    /// Node indices in topological (dependency) order.
    topo: Vec<usize>,
}

fn is_ident(s: &str) -> bool {
    let mut ch = s.chars();
    match ch.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    ch.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_dims(s: &str, line: usize) -> Result<Dims, TensorError> {
    let s = s.trim();
    let Some(rest) = s.strip_prefix("f32") else {
        // A different element type is a *type* error, a malformed tail a
        // parse error.
        let tail = s.find('[').map_or(s, |i| &s[..i]);
        if is_ident(tail) && !tail.is_empty() {
            return Err(terr(
                TensorCode::Type,
                format!("line {line}: element type `{tail}` unsupported (only f32)"),
            ));
        }
        return Err(terr(
            TensorCode::Parse,
            format!("line {line}: bad type `{s}`"),
        ));
    };
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| terr(TensorCode::Parse, format!("line {line}: bad type `{s}`")))?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    if parts.len() != 2 {
        return Err(terr(
            TensorCode::Rank,
            format!(
                "line {line}: rank-{} tensor `{s}` (tensors are rank-2: f32[R,C])",
                parts.len()
            ),
        ));
    }
    let rows: usize = parts[0].parse().map_err(|_| {
        terr(
            TensorCode::Parse,
            format!("line {line}: bad rows `{}`", parts[0]),
        )
    })?;
    let cols: usize = parts[1].parse().map_err(|_| {
        terr(
            TensorCode::Parse,
            format!("line {line}: bad cols `{}`", parts[1]),
        )
    })?;
    if rows == 0 || cols == 0 || rows > MAX_DIM || cols > MAX_DIM {
        return Err(terr(
            TensorCode::Shape,
            format!("line {line}: dimensions [{rows},{cols}] out of range 1..={MAX_DIM}"),
        ));
    }
    Ok(Dims::new(rows, cols))
}

/// Infer the result dims of `op` over operand dims `ds`, or explain why
/// the shapes are incompatible.
fn infer_dims(op: GraphOp, name: &str, ds: &[Dims]) -> Result<Dims, TensorError> {
    match op {
        GraphOp::MatMul => {
            let (a, b) = (ds[0], ds[1]);
            if a.cols != b.rows {
                return Err(terr(
                    TensorCode::Shape,
                    format!("%{name}: matmul inner dims disagree, {a} × {b}"),
                ));
            }
            Ok(Dims::new(a.rows, b.cols))
        }
        GraphOp::Conv => {
            let (a, k) = (ds[0], ds[1]);
            if k.rows > a.rows || k.cols > a.cols {
                return Err(terr(
                    TensorCode::Shape,
                    format!("%{name}: conv kernel {k} exceeds input {a}"),
                ));
            }
            Ok(Dims::new(a.rows - k.rows + 1, a.cols - k.cols + 1))
        }
        GraphOp::Add | GraphOp::Mul => {
            let (a, b) = (ds[0], ds[1]);
            if a != b {
                return Err(terr(
                    TensorCode::Shape,
                    format!("%{name}: {} operands disagree, {a} vs {b}", op.mnemonic()),
                ));
            }
            Ok(a)
        }
        GraphOp::Relu | GraphOp::Softmax => Ok(ds[0]),
        GraphOp::Reduce => Ok(Dims::new(1, 1)),
    }
}

impl TensorGraph {
    /// Build and verify a graph from parts (shape inference, cycle
    /// check, reference resolution already encoded in `GraphRef`s).
    ///
    /// # Errors
    /// Shape/rank/cycle violations, typed.
    pub fn build(
        name: impl Into<String>,
        inputs: Vec<GraphInput>,
        mut nodes: Vec<GraphNode>,
        output: usize,
    ) -> Result<TensorGraph, TensorError> {
        let name = name.into();
        // Bounds + arity.
        for n in &nodes {
            if n.args.len() != n.op.arity() {
                return Err(terr(
                    TensorCode::Arity,
                    format!(
                        "%{}: {} takes {} operand(s), got {}",
                        n.name,
                        n.op.mnemonic(),
                        n.op.arity(),
                        n.args.len()
                    ),
                ));
            }
            for a in &n.args {
                let ok = match a {
                    GraphRef::Input(i) => *i < inputs.len(),
                    GraphRef::Node(j) => *j < nodes.len(),
                };
                if !ok {
                    return Err(terr(
                        TensorCode::Undef,
                        format!("%{}: dangling reference", n.name),
                    ));
                }
            }
        }
        if output >= nodes.len() {
            return Err(terr(
                TensorCode::Undef,
                "output references no node".to_string(),
            ));
        }
        // Topological sort (Kahn) over node→node edges; a leftover node
        // means a cycle.
        let nn = nodes.len();
        let mut indeg = vec![0usize; nn];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nn];
        for (i, n) in nodes.iter().enumerate() {
            for a in &n.args {
                if let GraphRef::Node(j) = a {
                    indeg[i] += 1;
                    succs[*j].push(i);
                }
            }
        }
        let mut work: Vec<usize> = (0..nn).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(nn);
        while let Some(i) = work.pop() {
            topo.push(i);
            for &s in &succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    work.push(s);
                }
            }
        }
        if topo.len() != nn {
            let stuck: Vec<&str> = (0..nn)
                .filter(|&i| indeg[i] > 0)
                .map(|i| nodes[i].name.as_str())
                .collect();
            return Err(terr(
                TensorCode::Cycle,
                format!("nodes form a cycle through %{}", stuck.join(", %")),
            ));
        }
        // Kahn proved acyclicity; derive the *canonical* topo order by
        // repeated passes in declaration order until fixpoint (stable
        // regardless of worklist pop order, cheap at these sizes).
        let mut placed = vec![false; nn];
        let mut order = Vec::with_capacity(nn);
        while order.len() < nn {
            let before = order.len();
            for i in 0..nn {
                if placed[i] {
                    continue;
                }
                let ready = nodes[i].args.iter().all(|a| match a {
                    GraphRef::Input(_) => true,
                    GraphRef::Node(j) => placed[*j],
                });
                if ready {
                    placed[i] = true;
                    order.push(i);
                }
            }
            debug_assert!(order.len() > before, "cycle slipped past Kahn");
        }
        // Shape inference in dependency order.
        for &i in &order {
            let ds: Vec<Dims> = nodes[i]
                .args
                .iter()
                .map(|a| match a {
                    GraphRef::Input(k) => inputs[*k].dims,
                    GraphRef::Node(j) => nodes[*j].dims,
                })
                .collect();
            nodes[i].dims = infer_dims(nodes[i].op, &nodes[i].name.clone(), &ds)?;
        }
        Ok(TensorGraph {
            name,
            inputs,
            nodes,
            output,
            topo: order,
        })
    }

    /// Parse the text format (see module docs).
    ///
    /// # Errors
    /// Typed `E-TENSOR-*` failures with line numbers.
    pub fn parse(text: &str) -> Result<TensorGraph, TensorError> {
        let mut name: Option<String> = None;
        let mut inputs: Vec<GraphInput> = Vec::new();
        // (name, op, raw args, line)
        let mut raw_nodes: Vec<(String, GraphOp, Vec<String>, usize)> = Vec::new();
        let mut output: Option<(String, usize)> = None;
        for (ln, raw) in text.lines().enumerate() {
            let ln = ln + 1;
            let line = raw.split(';').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("graph ") {
                if name.is_some() {
                    return Err(terr(
                        TensorCode::Parse,
                        format!("line {ln}: duplicate graph header"),
                    ));
                }
                let g = rest.trim();
                if !is_ident(g) {
                    return Err(terr(
                        TensorCode::Parse,
                        format!("line {ln}: bad graph name `{g}`"),
                    ));
                }
                name = Some(g.to_string());
            } else if let Some(rest) = line.strip_prefix("input ") {
                let (nm, ty) = rest.split_once(':').ok_or_else(|| {
                    terr(
                        TensorCode::Parse,
                        format!("line {ln}: input needs `: f32[R,C]`"),
                    )
                })?;
                let nm = nm.trim();
                if !is_ident(nm) {
                    return Err(terr(
                        TensorCode::Parse,
                        format!("line {ln}: bad input name `{nm}`"),
                    ));
                }
                if inputs.iter().any(|i| i.name == nm) {
                    return Err(terr(
                        TensorCode::Parse,
                        format!("line {ln}: duplicate input `{nm}`"),
                    ));
                }
                let dims = parse_dims(ty, ln)?;
                inputs.push(GraphInput {
                    name: nm.to_string(),
                    dims,
                });
            } else if let Some(rest) = line.strip_prefix("output ") {
                if output.is_some() {
                    return Err(terr(
                        TensorCode::Parse,
                        format!("line {ln}: duplicate output"),
                    ));
                }
                let r = rest.trim();
                let nm = r.strip_prefix('%').ok_or_else(|| {
                    terr(
                        TensorCode::Parse,
                        format!("line {ln}: output must name a %node"),
                    )
                })?;
                output = Some((nm.to_string(), ln));
            } else if let Some(rest) = line.strip_prefix('%') {
                let (nm, def) = rest.split_once('=').ok_or_else(|| {
                    terr(
                        TensorCode::Parse,
                        format!("line {ln}: node needs `= op args`"),
                    )
                })?;
                let nm = nm.trim();
                if !is_ident(nm) {
                    return Err(terr(
                        TensorCode::Parse,
                        format!("line {ln}: bad node name `%{nm}`"),
                    ));
                }
                if raw_nodes.iter().any(|(n, ..)| n == nm) {
                    return Err(terr(
                        TensorCode::Parse,
                        format!("line {ln}: duplicate node `%{nm}`"),
                    ));
                }
                let def = def.trim();
                let (opname, args) = def.split_once(' ').unwrap_or((def, ""));
                let op = GraphOp::from_mnemonic(opname.trim()).ok_or_else(|| {
                    terr(
                        TensorCode::Parse,
                        format!("line {ln}: unknown op `{opname}`"),
                    )
                })?;
                let args: Vec<String> = args
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                raw_nodes.push((nm.to_string(), op, args, ln));
            } else {
                return Err(terr(
                    TensorCode::Parse,
                    format!("line {ln}: unrecognized `{line}`"),
                ));
            }
        }
        let name = name.ok_or_else(|| terr(TensorCode::Parse, "missing `graph <name>` header"))?;
        let (out_name, out_ln) =
            output.ok_or_else(|| terr(TensorCode::Parse, "missing `output %node`"))?;
        // Resolve references.
        let node_idx: BTreeMap<&str, usize> = raw_nodes
            .iter()
            .enumerate()
            .map(|(i, (n, ..))| (n.as_str(), i))
            .collect();
        let input_idx: BTreeMap<&str, usize> = inputs
            .iter()
            .enumerate()
            .map(|(i, inp)| (inp.name.as_str(), i))
            .collect();
        let mut nodes = Vec::with_capacity(raw_nodes.len());
        for (nm, op, raw_args, ln) in &raw_nodes {
            let mut args = Vec::with_capacity(raw_args.len());
            for a in raw_args {
                let r = if let Some(n) = a.strip_prefix('%') {
                    GraphRef::Node(*node_idx.get(n).ok_or_else(|| {
                        terr(TensorCode::Undef, format!("line {ln}: unknown node `%{n}`"))
                    })?)
                } else {
                    GraphRef::Input(*input_idx.get(a.as_str()).ok_or_else(|| {
                        terr(TensorCode::Undef, format!("line {ln}: unknown input `{a}`"))
                    })?)
                };
                args.push(r);
            }
            nodes.push(GraphNode {
                name: nm.clone(),
                op: *op,
                args,
                dims: Dims::new(1, 1), // inferred by build()
            });
        }
        let out = *node_idx.get(out_name.as_str()).ok_or_else(|| {
            terr(
                TensorCode::Undef,
                format!("line {out_ln}: unknown output node `%{out_name}`"),
            )
        })?;
        TensorGraph::build(name, inputs, nodes, out)
    }

    /// Canonical text form; `parse(print(g))` is the identity.
    pub fn print(&self) -> String {
        let mut s = format!("graph {}\n", self.name);
        for i in &self.inputs {
            s.push_str(&format!("input {} : {}\n", i.name, i.dims));
        }
        for n in &self.nodes {
            let args: Vec<String> = n
                .args
                .iter()
                .map(|a| match a {
                    GraphRef::Input(i) => self.inputs[*i].name.clone(),
                    GraphRef::Node(j) => format!("%{}", self.nodes[*j].name),
                })
                .collect();
            s.push_str(&format!(
                "%{} = {} {}\n",
                n.name,
                n.op.mnemonic(),
                args.join(", ")
            ));
        }
        s.push_str(&format!("output %{}\n", self.nodes[self.output].name));
        s
    }

    /// Deterministic content hash of the canonical text form.
    pub fn content_hash(&self) -> u64 {
        let mut h = ContentHasher::new();
        h.push(self.print().as_bytes());
        h.finish()
    }

    /// Node indices in dependency order (inputs-first schedule).
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// Evaluate the graph on f32 inputs (row-major, one slice per
    /// declared input) and return the output tensor, row-major.
    ///
    /// This is the graph-level *reference semantics*: independent of the
    /// lowering, used by the differential suites.
    ///
    /// # Errors
    /// Input count/length mismatches (typed `E-TENSOR-SHAPE`).
    pub fn eval(&self, inputs: &[Vec<f32>]) -> Result<Vec<f32>, TensorError> {
        if inputs.len() != self.inputs.len() {
            return Err(terr(
                TensorCode::Shape,
                format!(
                    "expected {} input tensors, got {}",
                    self.inputs.len(),
                    inputs.len()
                ),
            ));
        }
        for (gi, data) in self.inputs.iter().zip(inputs) {
            if data.len() != gi.dims.elems() {
                return Err(terr(
                    TensorCode::Shape,
                    format!(
                        "input {}: expected {} elements, got {}",
                        gi.name,
                        gi.dims.elems(),
                        data.len()
                    ),
                ));
            }
        }
        let mut vals: Vec<Option<Vec<f32>>> = vec![None; self.nodes.len()];
        let fetch = |vals: &Vec<Option<Vec<f32>>>, r: GraphRef| -> (Vec<f32>, Dims) {
            match r {
                GraphRef::Input(i) => (inputs[i].clone(), self.inputs[i].dims),
                GraphRef::Node(j) => (vals[j].clone().expect("topo order"), self.nodes[j].dims),
            }
        };
        for &i in &self.topo {
            let n = &self.nodes[i];
            let (a, ad) = fetch(&vals, n.args[0]);
            let out = match n.op {
                GraphOp::MatMul => {
                    let (b, bd) = fetch(&vals, n.args[1]);
                    let (m, k, nn) = (ad.rows, ad.cols, bd.cols);
                    let mut c = vec![0.0f32; m * nn];
                    for r in 0..m {
                        for col in 0..nn {
                            let mut acc = 0.0f32;
                            for t in 0..k {
                                acc += a[r * k + t] * b[t * nn + col];
                            }
                            c[r * nn + col] = acc;
                        }
                    }
                    c
                }
                GraphOp::Conv => {
                    let (kn, kd) = fetch(&vals, n.args[1]);
                    let (oh, ow) = (n.dims.rows, n.dims.cols);
                    let mut c = vec![0.0f32; oh * ow];
                    for oi in 0..oh {
                        for oj in 0..ow {
                            let mut acc = 0.0f32;
                            for r in 0..kd.rows {
                                for s in 0..kd.cols {
                                    acc += a[(oi + r) * ad.cols + (oj + s)] * kn[r * kd.cols + s];
                                }
                            }
                            c[oi * ow + oj] = acc;
                        }
                    }
                    c
                }
                GraphOp::Add | GraphOp::Mul => {
                    let (b, _) = fetch(&vals, n.args[1]);
                    a.iter()
                        .zip(&b)
                        .map(|(x, y)| if n.op == GraphOp::Add { x + y } else { x * y })
                        .collect()
                }
                GraphOp::Relu => a.iter().map(|x| x.max(0.0)).collect(),
                GraphOp::Reduce => vec![a.iter().sum()],
                GraphOp::Softmax => {
                    let w = ad.cols;
                    let mut out = Vec::with_capacity(a.len());
                    for row in a.chunks(w) {
                        let es: Vec<f32> = row.iter().map(|x| x.exp()).collect();
                        let s: f32 = es.iter().sum();
                        out.extend(es.iter().map(|e| e / s));
                    }
                    out
                }
            };
            vals[i] = Some(out);
        }
        Ok(vals[self.output].clone().expect("output evaluated"))
    }
}

/// Lowering configuration.
#[derive(Debug, Clone)]
pub struct TensorLowerConfig {
    /// Widest row strip to issue as one tile (elements, ≤ 8).
    pub max_tile: usize,
    /// Fold single-consumer `relu` into its producer's store loop.
    pub fuse: bool,
}

impl Default for TensorLowerConfig {
    fn default() -> Self {
        TensorLowerConfig {
            max_tile: MAX_TILE,
            fuse: true,
        }
    }
}

/// A lowered graph: the `muir-mir` module plus the memory-object map a
/// caller needs to seed inputs and check the output.
#[derive(Debug, Clone)]
pub struct LoweredGraph {
    /// The loop-nest module (one `main`, tile intrinsics inside).
    pub module: Module,
    /// One read-only object per graph input, in declaration order.
    pub inputs: Vec<MemObjId>,
    /// The output object (always named `out`).
    pub output: MemObjId,
    /// Number of `relu` nodes folded into their producers.
    pub fused_relus: usize,
}

/// Largest divisor of `w` that is ≤ `max` (tile width planning).
fn chunk_width(w: usize, max: usize) -> usize {
    let max = max.clamp(1, MAX_TILE);
    (1..=max.min(w))
        .rev()
        .find(|t| w.is_multiple_of(*t))
        .unwrap_or(1)
}

impl TensorGraph {
    /// Graph-level fusion plan: for each node, the index of the
    /// single-consumer `relu` folded into it (if any). A `relu` is
    /// foldable when its operand is a non-relu *node* (not an input, not
    /// the graph output) with exactly one use.
    pub fn fusion_plan(&self) -> BTreeMap<usize, usize> {
        let mut uses = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for a in &n.args {
                if let GraphRef::Node(j) = a {
                    uses[*j] += 1;
                }
            }
        }
        let mut plan = BTreeMap::new();
        for (c, n) in self.nodes.iter().enumerate() {
            if n.op != GraphOp::Relu {
                continue;
            }
            if let GraphRef::Node(p) = n.args[0] {
                if uses[p] == 1 && p != self.output && self.nodes[p].op != GraphOp::Relu {
                    plan.insert(p, c);
                }
            }
        }
        plan
    }

    /// Lower to a `muir-mir` loop-nest module (see module docs for the
    /// tiling/fusion contract).
    ///
    /// # Errors
    /// Currently infallible for verified graphs; kept fallible for
    /// future resource limits.
    pub fn lower(&self, cfg: &TensorLowerConfig) -> Result<LoweredGraph, TensorError> {
        let mut m = Module::new(self.name.clone());
        let plan = if cfg.fuse {
            self.fusion_plan()
        } else {
            BTreeMap::new()
        };
        let fused_relus = plan.len();
        let skipped: Vec<usize> = plan.values().copied().collect();

        // Pass 1: memory objects. Every input; every materialized node
        // (fused producers write into their relu consumer's buffer); a
        // `*_bt` transpose scratch per matmul.
        let input_objs: Vec<MemObjId> = self
            .inputs
            .iter()
            .map(|i| m.add_ro_mem_object(i.name.clone(), ScalarType::F32, i.dims.elems() as u64))
            .collect();
        let mut node_buf: Vec<Option<MemObjId>> = vec![None; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if plan.contains_key(&i) {
                continue; // fused producer writes to its consumer's buffer
            }
            let name = if i == self.output {
                "out".to_string()
            } else {
                format!("t_{}", n.name)
            };
            node_buf[i] = Some(m.add_mem_object(name, ScalarType::F32, n.dims.elems() as u64));
        }
        // Fused producers share the consumer relu's buffer.
        for (&p, &c) in &plan {
            node_buf[p] = node_buf[c];
        }
        let mut bt_objs: BTreeMap<usize, MemObjId> = BTreeMap::new();
        for &i in &self.topo {
            if self.nodes[i].op == GraphOp::MatMul {
                let bd = self.ref_dims(self.nodes[i].args[1]);
                let o = m.add_mem_object(
                    format!("t_{}_bt", self.nodes[i].name),
                    ScalarType::F32,
                    bd.elems() as u64,
                );
                bt_objs.insert(i, o);
            }
        }
        let output_obj = node_buf[self.output].expect("output materialized");

        // Pass 2: emit loop nests in dependency order.
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        for &i in &self.topo {
            if skipped.contains(&i) {
                continue;
            }
            let n = &self.nodes[i];
            let fused = plan.contains_key(&i);
            let dst = node_buf[i].expect("materialized");
            let src = |g: &TensorGraph, r: GraphRef| -> (MemObjId, Dims) {
                match r {
                    GraphRef::Input(k) => (input_objs[k], g.inputs[k].dims),
                    GraphRef::Node(j) => (node_buf[j].expect("topo order"), g.nodes[j].dims),
                }
            };
            match n.op {
                GraphOp::MatMul => {
                    let (ao, ad) = src(self, n.args[0]);
                    let (bo, bd) = src(self, n.args[1]);
                    let bt = bt_objs[&i];
                    emit_matmul(&mut b, ao, ad, bo, bd, bt, dst, fused, cfg);
                }
                GraphOp::Conv => {
                    let (ao, ad) = src(self, n.args[0]);
                    let (ko, kd) = src(self, n.args[1]);
                    emit_conv(&mut b, ao, ad, ko, kd, dst, n.dims, fused, cfg);
                }
                GraphOp::Add | GraphOp::Mul => {
                    let (xo, xd) = src(self, n.args[0]);
                    let (yo, _) = src(self, n.args[1]);
                    let top = if n.op == GraphOp::Add {
                        TensorOp::Add
                    } else {
                        TensorOp::Mul
                    };
                    emit_elementwise2(&mut b, top, xo, yo, dst, xd, fused, cfg);
                }
                GraphOp::Relu => {
                    let (xo, xd) = src(self, n.args[0]);
                    emit_relu(&mut b, xo, dst, xd, cfg);
                }
                GraphOp::Reduce => {
                    let (xo, xd) = src(self, n.args[0]);
                    emit_reduce(&mut b, xo, dst, xd, fused, cfg);
                }
                GraphOp::Softmax => {
                    let (xo, xd) = src(self, n.args[0]);
                    emit_softmax(&mut b, xo, dst, xd, fused, cfg);
                }
            }
        }
        b.ret(None);
        m.add_function(b.finish());
        Ok(LoweredGraph {
            module: m,
            inputs: input_objs,
            output: output_obj,
            fused_relus,
        })
    }

    fn ref_dims(&self, r: GraphRef) -> Dims {
        match r {
            GraphRef::Input(i) => self.inputs[i].dims,
            GraphRef::Node(j) => self.nodes[j].dims,
        }
    }

    /// Lower, translate, and verify into an [`Accelerator`] in one step
    /// (the tensor front door's equivalent of `translate`).
    ///
    /// # Errors
    /// Lowering or frontend failures.
    pub fn to_accelerator(
        &self,
        lcfg: &TensorLowerConfig,
        fcfg: &FrontendConfig,
    ) -> Result<(Accelerator, LoweredGraph), TensorGraphError> {
        let lowered = self.lower(lcfg)?;
        let acc = translate(&lowered.module, fcfg)?;
        Ok((acc, lowered))
    }
}

/// Either layer's failure, for the combined [`TensorGraph::to_accelerator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorGraphError {
    /// Graph-level failure.
    Tensor(TensorError),
    /// μIR frontend failure on the lowered module.
    Frontend(FrontendError),
}

impl fmt::Display for TensorGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorGraphError::Tensor(e) => e.fmt(f),
            TensorGraphError::Frontend(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for TensorGraphError {}

impl From<TensorError> for TensorGraphError {
    fn from(e: TensorError) -> Self {
        TensorGraphError::Tensor(e)
    }
}

impl From<FrontendError> for TensorGraphError {
    fn from(e: FrontendError) -> Self {
        TensorGraphError::Frontend(e)
    }
}

fn row_shape(t: usize) -> TensorShape {
    TensorShape::new(1, t as u8)
}

const F32S: Type = Type::Scalar(ScalarType::F32);

#[allow(clippy::too_many_arguments)]
fn emit_matmul(
    b: &mut FunctionBuilder,
    ao: MemObjId,
    ad: Dims,
    bo: MemObjId,
    bd: Dims,
    bt: MemObjId,
    dst: MemObjId,
    fused_relu: bool,
    cfg: &TensorLowerConfig,
) {
    let (m, k, n) = (ad.rows as i64, ad.cols as i64, bd.cols as i64);
    // Transpose B into bt (row-major [n,k]) so each dot product reads two
    // contiguous row strips.
    b.for_loop_par(0, ValueRef::int(n), 1, |b, j| {
        b.for_loop(0, ValueRef::int(k), 1, |b, l| {
            let ln = b.mul(l, ValueRef::int(n));
            let sidx = b.add(ln, j);
            let v = b.load(bo, sidx);
            let jk = b.mul(j, ValueRef::int(k));
            let didx = b.add(jk, l);
            b.store(bt, didx, v);
        });
    });
    let t = chunk_width(k as usize, cfg.max_tile) as i64;
    let sh = row_shape(t as usize);
    b.for_loop_par(0, ValueRef::int(m), 1, |b, i| {
        b.for_loop_par(0, ValueRef::int(n), 1, |b, j| {
            let arow = b.mul(i, ValueRef::int(k));
            let brow = b.mul(j, ValueRef::int(k));
            let acc = b.for_loop_acc(
                ValueRef::int(0),
                ValueRef::int(k / t),
                1,
                &[(ValueRef::f32(0.0), F32S)],
                |b, c, accs| {
                    let off = b.mul(c, ValueRef::int(t));
                    let aoff = b.add(arow, off);
                    let at = b.load_tile(ao, aoff, sh);
                    let boff = b.add(brow, off);
                    let btile = b.load_tile(bt, boff, sh);
                    let p = b.tensor2(TensorOp::Conv, sh, at, btile);
                    vec![b.fadd(accs[0], p)]
                },
            );
            let v = if fused_relu { b.relu(acc[0]) } else { acc[0] };
            let irow = b.mul(i, ValueRef::int(n));
            let o = b.add(irow, j);
            b.store(dst, o, v);
        });
    });
}

#[allow(clippy::too_many_arguments)]
fn emit_conv(
    b: &mut FunctionBuilder,
    ao: MemObjId,
    ad: Dims,
    ko: MemObjId,
    kd: Dims,
    dst: MemObjId,
    od: Dims,
    fused_relu: bool,
    cfg: &TensorLowerConfig,
) {
    let (w, kh, kw) = (ad.cols as i64, kd.rows as i64, kd.cols as i64);
    let (oh, ow) = (od.rows as i64, od.cols as i64);
    let t = chunk_width(kw as usize, cfg.max_tile) as i64;
    let sh = row_shape(t as usize);
    b.for_loop_par(0, ValueRef::int(oh), 1, |b, oi| {
        b.for_loop_par(0, ValueRef::int(ow), 1, |b, oj| {
            let acc = b.for_loop_acc(
                ValueRef::int(0),
                ValueRef::int(kh),
                1,
                &[(ValueRef::f32(0.0), F32S)],
                |b, r, accs| {
                    let row = b.add(oi, r);
                    let roww = b.mul(row, ValueRef::int(w));
                    let base = b.add(roww, oj);
                    let krow = b.mul(r, ValueRef::int(kw));
                    let racc = b.for_loop_acc(
                        ValueRef::int(0),
                        ValueRef::int(kw / t),
                        1,
                        &[(ValueRef::f32(0.0), F32S)],
                        |b, c, rac| {
                            let off = b.mul(c, ValueRef::int(t));
                            let io = b.add(base, off);
                            let it = b.load_tile(ao, io, sh);
                            let kio = b.add(krow, off);
                            let kt = b.load_tile(ko, kio, sh);
                            let p = b.tensor2(TensorOp::Conv, sh, it, kt);
                            vec![b.fadd(rac[0], p)]
                        },
                    );
                    vec![b.fadd(accs[0], racc[0])]
                },
            );
            let v = if fused_relu { b.relu(acc[0]) } else { acc[0] };
            let orow = b.mul(oi, ValueRef::int(ow));
            let o = b.add(orow, oj);
            b.store(dst, o, v);
        });
    });
}

#[allow(clippy::too_many_arguments)]
fn emit_elementwise2(
    b: &mut FunctionBuilder,
    op: TensorOp,
    xo: MemObjId,
    yo: MemObjId,
    dst: MemObjId,
    d: Dims,
    fused_relu: bool,
    cfg: &TensorLowerConfig,
) {
    let total = d.elems() as i64;
    let t = chunk_width(d.elems(), cfg.max_tile) as i64;
    let sh = row_shape(t as usize);
    b.for_loop_par(0, ValueRef::int(total / t), 1, |b, p| {
        let off = b.mul(p, ValueRef::int(t));
        let x = b.load_tile(xo, off, sh);
        let y = b.load_tile(yo, off, sh);
        let mut v = b.tensor2(op, sh, x, y);
        if fused_relu {
            v = b.tensor1(TensorOp::Relu, sh, v);
        }
        b.store(dst, off, v);
    });
}

fn emit_relu(
    b: &mut FunctionBuilder,
    xo: MemObjId,
    dst: MemObjId,
    d: Dims,
    cfg: &TensorLowerConfig,
) {
    let total = d.elems() as i64;
    let t = chunk_width(d.elems(), cfg.max_tile) as i64;
    let sh = row_shape(t as usize);
    b.for_loop_par(0, ValueRef::int(total / t), 1, |b, p| {
        let off = b.mul(p, ValueRef::int(t));
        let x = b.load_tile(xo, off, sh);
        let v = b.tensor1(TensorOp::Relu, sh, x);
        b.store(dst, off, v);
    });
}

fn emit_reduce(
    b: &mut FunctionBuilder,
    xo: MemObjId,
    dst: MemObjId,
    d: Dims,
    fused_relu: bool,
    cfg: &TensorLowerConfig,
) {
    let total = d.elems() as i64;
    let t = chunk_width(d.elems(), cfg.max_tile) as i64;
    let sh = row_shape(t as usize);
    let acc = b.for_loop_acc(
        ValueRef::int(0),
        ValueRef::int(total / t),
        1,
        &[(ValueRef::f32(0.0), F32S)],
        |b, p, accs| {
            let off = b.mul(p, ValueRef::int(t));
            let x = b.load_tile(xo, off, sh);
            let s = b.tensor1(TensorOp::Reduce, sh, x);
            vec![b.fadd(accs[0], s)]
        },
    );
    let v = if fused_relu { b.relu(acc[0]) } else { acc[0] };
    b.store(dst, ValueRef::int(0), v);
}

fn emit_softmax(
    b: &mut FunctionBuilder,
    xo: MemObjId,
    dst: MemObjId,
    d: Dims,
    fused_relu: bool,
    cfg: &TensorLowerConfig,
) {
    let (h, w) = (d.rows as i64, d.cols as i64);
    if d.cols <= cfg.max_tile.clamp(1, MAX_TILE) {
        // Whole row in one tile: the softmax functional unit handles it.
        let sh = row_shape(d.cols);
        b.for_loop_par(0, ValueRef::int(h), 1, |b, i| {
            let off = b.mul(i, ValueRef::int(w));
            let x = b.load_tile(xo, off, sh);
            let mut v = b.tensor1(TensorOp::Softmax, sh, x);
            if fused_relu {
                v = b.tensor1(TensorOp::Relu, sh, v);
            }
            b.store(dst, off, v);
        });
    } else {
        // Scalar fallback: exp pass accumulating the row sum into the
        // destination, then an in-place divide pass.
        b.for_loop_par(0, ValueRef::int(h), 1, |b, i| {
            let base = b.mul(i, ValueRef::int(w));
            let sum = b.for_loop_acc(
                ValueRef::int(0),
                ValueRef::int(w),
                1,
                &[(ValueRef::f32(0.0), F32S)],
                |b, j, accs| {
                    let o = b.add(base, j);
                    let v = b.load(xo, o);
                    let e = b.exp(v);
                    b.store(dst, o, e);
                    vec![b.fadd(accs[0], e)]
                },
            );
            b.for_loop(0, ValueRef::int(w), 1, |b, j| {
                let o = b.add(base, j);
                let e = b.load(dst, o);
                let mut q = b.fdiv(e, sum[0]);
                if fused_relu {
                    q = b.relu(q);
                }
                b.store(dst, o, q);
            });
        });
    }
}

/// Deterministic seeded graph generator (constructive — every produced
/// graph verifies). `size` scales the op count; the same `(seed, size)`
/// always yields the same graph. Shared by the frontend property tests
/// and `muir_bench::testgen`'s fuzz mix.
pub fn gen_graph(seed: u64, size: usize) -> TensorGraph {
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, bound: usize) -> usize {
            (self.next() % bound.max(1) as u64) as usize
        }
    }
    fn add_input(inputs: &mut Vec<GraphInput>, dims: Dims) -> GraphRef {
        let idx = inputs.len();
        inputs.push(GraphInput {
            name: format!("in{idx}"),
            dims,
        });
        GraphRef::Input(idx)
    }
    const DIM_POOL: [usize; 8] = [1, 2, 3, 4, 6, 8, 12, 16];
    let mut rng = Rng(seed.max(1));
    let mut inputs: Vec<GraphInput> = Vec::new();
    let d0 = Dims::new(
        DIM_POOL[rng.below(DIM_POOL.len())],
        DIM_POOL[rng.below(DIM_POOL.len())],
    );
    let first = add_input(&mut inputs, d0);
    // Pool of available values with their dims.
    let mut pool: Vec<(GraphRef, Dims)> = vec![(first, d0)];
    let mut nodes: Vec<GraphNode> = Vec::new();
    let n_ops = 1 + size.min(8) + rng.below(3);
    for i in 0..n_ops {
        let (vref, vd) = pool[rng.below(pool.len())];
        const OPS: [GraphOp; 7] = [
            GraphOp::Relu,
            GraphOp::Softmax,
            GraphOp::Reduce,
            GraphOp::Add,
            GraphOp::Mul,
            GraphOp::MatMul,
            GraphOp::Conv,
        ];
        let op = OPS[rng.below(OPS.len())];
        let (args, dims) = match op {
            GraphOp::Relu | GraphOp::Softmax => (vec![vref], vd),
            GraphOp::Reduce => (vec![vref], Dims::new(1, 1)),
            GraphOp::Add | GraphOp::Mul => {
                // Prefer an existing same-dims value; else mint an input.
                let mate = pool
                    .iter()
                    .find(|(r, d)| *d == vd && *r != vref)
                    .map(|(r, _)| *r);
                let mate = match mate {
                    Some(r) => r,
                    None => add_input(&mut inputs, vd),
                };
                (vec![vref, mate], vd)
            }
            GraphOp::MatMul => {
                let n = DIM_POOL[rng.below(DIM_POOL.len())];
                let rhs = add_input(&mut inputs, Dims::new(vd.cols, n));
                (vec![vref, rhs], Dims::new(vd.rows, n))
            }
            GraphOp::Conv => {
                let kh = 1 + rng.below(vd.rows.min(3));
                let kw = 1 + rng.below(vd.cols.min(3));
                let k = add_input(&mut inputs, Dims::new(kh, kw));
                (vec![vref, k], Dims::new(vd.rows - kh + 1, vd.cols - kw + 1))
            }
        };
        let nref = GraphRef::Node(nodes.len());
        nodes.push(GraphNode {
            name: format!("n{i}"),
            op,
            args,
            dims,
        });
        pool.push((nref, dims));
    }
    let output = nodes.len() - 1;
    TensorGraph::build(format!("gen_{seed:x}_{size}"), inputs, nodes, output)
        .expect("constructive generator always verifies")
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_mir::interp::{Interp, Memory};

    const ATTN: &str = "\
graph attn
input q : f32[8,8]
input kt : f32[8,8]
input v : f32[8,8]
%s = matmul q, kt
%p = softmax %s
%o = matmul %p, v
output %o
";

    fn det_data(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    /// Lower `g`, run the interpreter over the module, and return the
    /// output buffer.
    fn run_lowered(g: &TensorGraph, cfg: &TensorLowerConfig, seed: u64) -> Vec<f32> {
        let low = g.lower(cfg).unwrap();
        muir_mir::verify::verify_module(&low.module).unwrap();
        let mut mem = Memory::from_module(&low.module);
        for (obj, gi) in low.inputs.iter().zip(&g.inputs) {
            mem.init_f32(*obj, &det_data(seed ^ obj.0 as u64, gi.dims.elems()));
        }
        Interp::new(&low.module).run_main(&mut mem, &[]).unwrap();
        mem.read_f32(low.output)
    }

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                let scale = x.abs().max(y.abs()).max(1.0);
                (x - y).abs() <= 1e-4 * scale
            })
    }

    #[test]
    fn attn_parses_and_infers_shapes() {
        let g = TensorGraph::parse(ATTN).unwrap();
        assert_eq!(g.inputs.len(), 3);
        assert_eq!(g.nodes.len(), 3);
        for n in &g.nodes {
            assert_eq!(n.dims, Dims::new(8, 8), "%{}", n.name);
        }
    }

    #[test]
    fn print_parse_is_identity_on_canonical_text() {
        let g = TensorGraph::parse(ATTN).unwrap();
        let p = g.print();
        let g2 = TensorGraph::parse(&p).unwrap();
        assert_eq!(p, g2.print());
        assert_eq!(g.content_hash(), g2.content_hash());
    }

    #[test]
    fn roundtrip_property_over_generated_graphs() {
        for seed in 1..=40u64 {
            for size in 0..3usize {
                let g = gen_graph(seed, size);
                let p = g.print();
                let g2 = TensorGraph::parse(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{p}"));
                assert_eq!(p, g2.print(), "seed {seed} size {size}");
                assert_eq!(
                    g.content_hash(),
                    g2.content_hash(),
                    "seed {seed} size {size}"
                );
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = gen_graph(0xbeef, 2);
        let b = gen_graph(0xbeef, 2);
        assert_eq!(a.print(), b.print());
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), gen_graph(0xbee0, 2).content_hash());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let t = "graph g\ninput a : f32[4,4]\ninput b : f32[3,4]\n%m = matmul a, b\noutput %m\n";
        let e = TensorGraph::parse(t).unwrap_err();
        assert_eq!(e.code, TensorCode::Shape, "{e}");
        assert!(e.to_string().starts_with("E-TENSOR-SHAPE"), "{e}");

        let t = "graph g\ninput a : f32[4,4]\ninput b : f32[2,2]\n%m = add a, b\noutput %m\n";
        assert_eq!(TensorGraph::parse(t).unwrap_err().code, TensorCode::Shape);

        let t = "graph g\ninput a : f32[2,2]\ninput k : f32[3,3]\n%c = conv a, k\noutput %c\n";
        assert_eq!(TensorGraph::parse(t).unwrap_err().code, TensorCode::Shape);
    }

    #[test]
    fn rejects_rank_mismatch() {
        for bad in ["f32[8]", "f32[2,3,4]"] {
            let t = format!("graph g\ninput a : {bad}\n%r = relu a\noutput %r\n");
            let e = TensorGraph::parse(&t).unwrap_err();
            assert_eq!(e.code, TensorCode::Rank, "{bad}: {e}");
        }
    }

    #[test]
    fn rejects_cyclic_graphs() {
        let t = "graph g\ninput x : f32[2,2]\n%a = relu %b\n%b = relu %a\noutput %b\n";
        let e = TensorGraph::parse(t).unwrap_err();
        assert_eq!(e.code, TensorCode::Cycle, "{e}");
        // Self-loop.
        let t = "graph g\ninput x : f32[2,2]\n%a = relu %a\noutput %a\n";
        assert_eq!(TensorGraph::parse(t).unwrap_err().code, TensorCode::Cycle);
    }

    #[test]
    fn rejects_bad_types_refs_and_arity() {
        let t = "graph g\ninput a : i32[2,2]\n%r = relu a\noutput %r\n";
        assert_eq!(TensorGraph::parse(t).unwrap_err().code, TensorCode::Type);
        let t = "graph g\ninput a : f32[2,2]\n%r = relu b\noutput %r\n";
        assert_eq!(TensorGraph::parse(t).unwrap_err().code, TensorCode::Undef);
        let t = "graph g\ninput a : f32[2,2]\n%r = add a\noutput %r\n";
        assert_eq!(TensorGraph::parse(t).unwrap_err().code, TensorCode::Arity);
        let t = "graph g\ninput a : f32[2,2]\n%r = relu a\noutput %zz\n";
        assert_eq!(TensorGraph::parse(t).unwrap_err().code, TensorCode::Undef);
        let t = "graph g\ninput a : f32[2,2]\n%r = frobnicate a\noutput %r\n";
        assert_eq!(TensorGraph::parse(t).unwrap_err().code, TensorCode::Parse);
    }

    #[test]
    fn attention_lowering_matches_graph_eval() {
        let g = TensorGraph::parse(ATTN).unwrap();
        let low = g.lower(&TensorLowerConfig::default()).unwrap();
        let inputs: Vec<Vec<f32>> = low
            .inputs
            .iter()
            .zip(&g.inputs)
            .map(|(obj, gi)| det_data(7 ^ obj.0 as u64, gi.dims.elems()))
            .collect();
        let want = g.eval(&inputs).unwrap();
        let got = run_lowered(&g, &TensorLowerConfig::default(), 7);
        assert!(close(&want, &got), "\nwant {want:?}\ngot  {got:?}");
        // Softmax rows sum to 1 inside the pipeline: output rows are
        // convex combinations of V rows, a useful sanity bound.
        assert!(got.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn generated_graphs_lower_and_match_eval() {
        for seed in [3u64, 11, 23, 0xf00d, 0xc0ffee] {
            let g = gen_graph(seed, 2);
            let low = g.lower(&TensorLowerConfig::default()).unwrap();
            let inputs: Vec<Vec<f32>> = low
                .inputs
                .iter()
                .zip(&g.inputs)
                .map(|(obj, gi)| det_data(seed ^ obj.0 as u64, gi.dims.elems()))
                .collect();
            let want = g.eval(&inputs).unwrap();
            let got = run_lowered(&g, &TensorLowerConfig::default(), seed);
            assert!(
                close(&want, &got),
                "seed {seed}:\n{}\nwant {want:?}\ngot  {got:?}",
                g.print()
            );
        }
    }

    #[test]
    fn relu_fuses_into_matmul_store() {
        let t = "\
graph mtr
input x : f32[8,8]
input w : f32[8,8]
%m = matmul x, w
%r = relu %m
output %r
";
        let g = TensorGraph::parse(t).unwrap();
        let fused = g.lower(&TensorLowerConfig::default()).unwrap();
        assert_eq!(fused.fused_relus, 1);
        let unfused = g
            .lower(&TensorLowerConfig {
                fuse: false,
                ..TensorLowerConfig::default()
            })
            .unwrap();
        assert_eq!(unfused.fused_relus, 0);
        // Fusion removes the intermediate buffer.
        assert_eq!(
            fused.module.mem_objects.len() + 1,
            unfused.module.mem_objects.len()
        );
        // And preserves semantics.
        let a = run_lowered(&g, &TensorLowerConfig::default(), 99);
        let b = run_lowered(
            &g,
            &TensorLowerConfig {
                fuse: false,
                ..TensorLowerConfig::default()
            },
            99,
        );
        assert!(close(&a, &b), "\nfused   {a:?}\nunfused {b:?}");
        assert!(
            a.iter().all(|x| *x >= 0.0),
            "relu output must be non-negative"
        );
    }

    #[test]
    fn wide_softmax_uses_scalar_fallback() {
        let t = "graph ws\ninput x : f32[2,16]\n%s = softmax x\noutput %s\n";
        let g = TensorGraph::parse(t).unwrap();
        let low = g.lower(&TensorLowerConfig::default()).unwrap();
        let inputs = vec![det_data(5 ^ low.inputs[0].0 as u64, 32)];
        let want = g.eval(&inputs).unwrap();
        let got = run_lowered(&g, &TensorLowerConfig::default(), 5);
        assert!(close(&want, &got), "\nwant {want:?}\ngot  {got:?}");
        let row: f32 = got[..16].iter().sum();
        assert!((row - 1.0).abs() < 1e-4, "{row}");
    }

    #[test]
    fn lowered_graphs_translate_to_accelerators() {
        let g = TensorGraph::parse(ATTN).unwrap();
        let (acc, low) = g
            .to_accelerator(&TensorLowerConfig::default(), &FrontendConfig::default())
            .unwrap();
        assert!(acc.tasks.len() > 1, "loop nests should cut tasks");
        assert_eq!(low.module.name, "attn");
    }
}
