//! `muir-frontend` — Stage 1/2 of the μIR toolflow (§3.6, Algorithm 1).
//!
//! Translates a `muir-mir` module (the LLVM/Tapir stand-in) into a baseline
//! μIR accelerator:
//!
//! * **Stage 1 — task-graph extraction**: walks the program structure and
//!   cuts task blocks at the boundaries of dynamically schedulable regions:
//!   natural loops, Tapir detach regions (Cilk spawns), and function calls.
//!   Each task captures its scope (live-ins/live-outs) so it can be invoked
//!   through a timing-agnostic asynchronous interface.
//! * **Stage 2 — dataflow lowering**: lowers each task's basic blocks to a
//!   hyperblock (forward branches become dataflow predication, §3.5) and
//!   then to a literal dataflow translation: every compiler op becomes a
//!   decoupled node, every SSA edge a pipelined connection, and memory ops
//!   route through junctions to structures (§3.3–§3.4).
//!
//! The baseline memory system follows §6.4: a shared scratchpad homes small
//! (local) arrays, an L1 cache in front of DRAM serves large (global) ones.
//!
//! # Example
//!
//! ```
//! use muir_frontend::{translate, FrontendConfig};
//! use muir_mir::{FunctionBuilder, Module};
//! use muir_mir::types::ScalarType;
//! use muir_mir::instr::ValueRef;
//!
//! let mut m = Module::new("scale");
//! let a = m.add_mem_object("a", ScalarType::F32, 64);
//! let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
//! b.for_loop(0, ValueRef::int(64), 1, |b, i| {
//!     let v = b.load(a, i);
//!     let w = b.fmul(v, ValueRef::f32(2.0));
//!     b.store(a, i, w);
//! });
//! b.ret(None);
//! m.add_function(b.finish());
//!
//! let acc = translate(&m, &FrontendConfig::default())?;
//! assert_eq!(acc.tasks.len(), 2); // root region + one loop task
//! # Ok::<(), muir_frontend::FrontendError>(())
//! ```

mod build;
pub mod tensor;
#[cfg(test)]
mod tests;

use muir_core::accel::Accelerator;
use std::fmt;

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Objects with at most this many element slots are homed on the shared
    /// scratchpad; larger objects go to the L1 cache (§6.4 baseline).
    pub spad_threshold: u64,
    /// Default `<||>` queue depth between parent and child tasks (1 =
    /// tightly coupled baseline; Pass 1 widens it).
    pub child_queue_depth: u32,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            spad_threshold: 512,
            child_queue_depth: 1,
        }
    }
}

/// Translation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// Description of the unsupported or malformed construct.
    pub message: String,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frontend error: {}", self.message)
    }
}

impl std::error::Error for FrontendError {}

/// Translate a module to a baseline μIR accelerator (no μopt passes).
///
/// # Errors
/// Fails on malformed IR (verifier), non-canonical loops (bounds not
/// expressible as `for (i = lo; i < hi; i += step)`), or unsupported
/// constructs (multiple returns in one region).
pub fn translate(
    module: &muir_mir::module::Module,
    config: &FrontendConfig,
) -> Result<Accelerator, FrontendError> {
    build::Frontend::new(module, config)?.run()
}
