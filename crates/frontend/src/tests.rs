//! Translation tests: mir programs → baseline μIR graphs.

use crate::{translate, FrontendConfig};
use muir_core::accel::{Accelerator, ArgExpr, TaskKind};
use muir_core::dataflow::EdgeKind;
use muir_core::node::{NodeKind, OpKind};
use muir_core::structure::StructureKind;
use muir_mir::builder::FunctionBuilder;
use muir_mir::instr::{CmpPred, TensorOp, ValueRef};
use muir_mir::module::Module;
use muir_mir::types::{ScalarType, TensorShape, Type};

fn xlate(m: &Module) -> Accelerator {
    translate(m, &FrontendConfig::default()).expect("translation succeeds")
}

fn count_nodes(acc: &Accelerator, pred: impl Fn(&NodeKind) -> bool) -> usize {
    acc.tasks
        .iter()
        .flat_map(|t| t.dataflow.nodes.iter())
        .filter(|n| pred(&n.kind))
        .count()
}

#[test]
fn simple_loop_becomes_loop_task() {
    let mut m = Module::new("scale");
    let a = m.add_mem_object("a", ScalarType::F32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        let v = b.load(a, i);
        let w = b.fmul(v, ValueRef::f32(2.0));
        b.store(a, i, w);
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    assert_eq!(acc.tasks.len(), 2);
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .expect("loop task exists");
    match &acc.task(lp).kind {
        TaskKind::Loop { spec, serial } => {
            assert_eq!(spec.lo, ArgExpr::Const(0));
            assert_eq!(spec.hi, ArgExpr::Const(64));
            assert_eq!(spec.step, 1);
            assert!(!serial, "disjoint strided loop should pipeline");
        }
        TaskKind::Region => panic!("expected loop kind"),
    }
    // Root calls the loop.
    let root_df = &acc.task(acc.root).dataflow;
    assert!(root_df
        .nodes
        .iter()
        .any(|n| matches!(n.kind, NodeKind::TaskCall { .. })));
    // Loop dataflow contains load, fmul, store, indvar.
    let ldf = &acc.task(lp).dataflow;
    assert!(ldf.indvar_node().is_some());
    assert_eq!(ldf.mem_nodes().len(), 2);
}

#[test]
fn accumulator_loop_has_merge_and_feedback() {
    let mut m = Module::new("dot");
    let a = m.add_mem_object("a", ScalarType::F32, 32);
    let c = m.add_mem_object("c", ScalarType::F32, 1);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    let accs = b.for_loop_acc(
        ValueRef::int(0),
        ValueRef::int(32),
        1,
        &[(ValueRef::f32(0.0), Type::F32)],
        |b, i, accs| {
            let v = b.load(a, i);
            vec![b.fadd(accs[0], v)]
        },
    );
    b.store(c, ValueRef::int(0), accs[0]);
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    let task = acc.task(lp);
    assert_eq!(task.num_results, 1);
    assert_eq!(task.loop_result_inits.len(), 1);
    assert!(
        task.loop_result_inits[0].is_some(),
        "accumulator has a zero-trip init"
    );
    let df = &task.dataflow;
    assert!(df.nodes.iter().any(|n| matches!(n.kind, NodeKind::Merge)));
    assert!(df.edges.iter().any(|e| e.kind == EdgeKind::Feedback));
    // The root stores the loop's result.
    let root = &acc.task(acc.root).dataflow;
    assert!(root
        .nodes
        .iter()
        .any(|n| matches!(n.kind, NodeKind::Store { .. })));
}

#[test]
fn par_for_spawns_region_tasks() {
    let mut m = Module::new("cilk");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.par_for(0, 64, 1, |b, i| {
        let sq = b.mul(i, i);
        b.store(a, i, sq);
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    // root, pfor loop, spawned task body
    assert_eq!(acc.tasks.len(), 3);
    let spawns = count_nodes(&acc, |k| {
        matches!(k, NodeKind::TaskCall { spawn: true, .. })
    });
    assert_eq!(spawns, 1);
    // The spawned body is a Region child of the loop task.
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    let kids = acc.children(lp);
    assert_eq!(kids.len(), 1);
    assert!(matches!(acc.task(kids[0]).kind, TaskKind::Region));
}

#[test]
fn nested_loops_build_hierarchy() {
    let mut m = Module::new("nest");
    let a = m.add_mem_object("a", ScalarType::F32, 256);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(16), 1, |b, i| {
        let base = b.mul(i, ValueRef::int(16));
        b.for_loop(0, ValueRef::int(16), 1, |b, j| {
            let idx = b.add(base, j);
            let v = b.load(a, idx);
            let w = b.fadd(v, ValueRef::f32(1.0));
            b.store(a, idx, w);
        });
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    assert_eq!(acc.tasks.len(), 3);
    let loops: Vec<_> = acc
        .task_ids()
        .filter(|&t| acc.task(t).kind.is_loop())
        .collect();
    assert_eq!(loops.len(), 2);
    // One loop is the child of the other.
    let parents: Vec<_> = loops.iter().map(|&l| acc.parent(l)).collect();
    assert!(parents
        .iter()
        .any(|p| p.map(|x| loops.contains(&x)).unwrap_or(false)));
    // The outer loop's dataflow calls the inner.
    let outer = loops
        .iter()
        .copied()
        .find(|&l| acc.children(l).iter().any(|c| loops.contains(c)))
        .unwrap();
    let odf = &acc.task(outer).dataflow;
    assert!(odf
        .nodes
        .iter()
        .any(|n| matches!(n.kind, NodeKind::TaskCall { spawn: false, .. })));
}

#[test]
fn branch_in_loop_predicates_store() {
    let mut m = Module::new("cond");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        let even = b.rem(i, ValueRef::int(2));
        let is_even = b.icmp(CmpPred::Eq, even, ValueRef::int(0));
        b.if_then(is_even, |b| {
            b.store(a, i, ValueRef::int(1));
        });
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    let predicated_stores = count_nodes(&acc, |k| {
        matches!(
            k,
            NodeKind::Store {
                predicated: true,
                ..
            }
        )
    });
    assert_eq!(predicated_stores, 1);
}

#[test]
fn if_else_phi_becomes_select() {
    let mut m = Module::new("sel");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        let c = b.icmp(CmpPred::Lt, i, ValueRef::int(32));
        let v = b.if_val(
            c,
            &[Type::I64],
            |b| vec![b.mul(ValueRef::Instr(i.as_instr().unwrap()), ValueRef::int(2))],
            |_| vec![ValueRef::int(7)],
        );
        b.store(a, i, v[0]);
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    let selects = count_nodes(&acc, |k| matches!(k, NodeKind::Compute(OpKind::Select)));
    assert!(selects >= 1, "phi should lower to a select");
}

#[test]
fn sequential_loops_get_order_edge() {
    let mut m = Module::new("seq");
    let a = m.add_mem_object("a", ScalarType::F32, 64);
    let c = m.add_mem_object("c", ScalarType::F32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    // Loop 1 writes a; loop 2 reads a, writes c.
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        b.store(a, i, ValueRef::f32(1.0));
    });
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        let v = b.load(a, i);
        b.store(c, i, v);
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    let root_df = &acc.task(acc.root).dataflow;
    let order_edges: Vec<_> = root_df
        .edges
        .iter()
        .filter(|e| e.kind == EdgeKind::Order)
        .collect();
    assert_eq!(order_edges.len(), 1, "second loop must wait for the first");
}

#[test]
fn independent_loops_have_no_order_edge() {
    let mut m = Module::new("indep");
    let a = m.add_mem_object("a", ScalarType::F32, 64);
    let c = m.add_mem_object("c", ScalarType::F32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        b.store(a, i, ValueRef::f32(1.0));
    });
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        b.store(c, i, ValueRef::f32(2.0));
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    let root_df = &acc.task(acc.root).dataflow;
    assert!(root_df.edges.iter().all(|e| e.kind != EdgeKind::Order));
}

#[test]
fn function_call_becomes_child_task() {
    let mut m = Module::new("calls");
    let a = m.add_mem_object("a", ScalarType::I32, 8);
    // main = FuncId(0), helper = FuncId(1)
    let mut helper = FunctionBuilder::new("helper", &[Type::I64])
        .with_mem(&m)
        .returns(Type::I64);
    let v = helper.mul(helper.arg(0), helper.arg(0));
    helper.ret(Some(v));
    let mut main = FunctionBuilder::new("main", &[]).with_mem(&m);
    let r = main.call(
        muir_mir::instr::FuncId(1),
        &[ValueRef::int(5)],
        Some(Type::I64),
    );
    main.store(a, ValueRef::int(0), r);
    main.ret(None);
    m.add_function(main.finish());
    m.add_function(helper.finish());

    let acc = xlate(&m);
    assert_eq!(acc.tasks.len(), 2);
    let child = acc.children(acc.root);
    assert_eq!(child.len(), 1);
    assert_eq!(acc.task(child[0]).num_results, 1);
    assert_eq!(acc.task(child[0]).num_args, 1);
}

#[test]
fn tensor_ops_translate_to_tensor_nodes() {
    let shape = TensorShape::new(2, 2);
    let mut m = Module::new("tmul");
    let a = m.add_mem_object("a", ScalarType::F32, 64);
    let bm = m.add_mem_object("b", ScalarType::F32, 64);
    let c = m.add_mem_object("c", ScalarType::F32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(16), 1, |b, i| {
        let idx = b.mul(i, ValueRef::int(4));
        let ta = b.load_tile(a, idx, shape);
        let tb = b.load_tile(bm, idx, shape);
        let tm = b.tensor2(TensorOp::MatMul, shape, ta, tb);
        b.store(c, idx, tm);
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    let tensor_nodes = count_nodes(&acc, |k| {
        matches!(k, NodeKind::Compute(OpKind::Tensor(TensorOp::MatMul, _)))
    });
    assert_eq!(tensor_nodes, 1);
    // Tile loads carry the tensor type.
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    let tile_loads = acc
        .task(lp)
        .dataflow
        .nodes
        .iter()
        .filter(|n| matches!(n.kind, NodeKind::Load { .. }) && n.ty.is_composite())
        .count();
    assert_eq!(tile_loads, 2);
}

#[test]
fn placement_splits_small_and_large_objects() {
    let mut m = Module::new("mem");
    let small = m.add_mem_object("small", ScalarType::F32, 64);
    let big = m.add_mem_object("big", ScalarType::F32, 1 << 20);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(64), 1, |b, i| {
        let v = b.load(big, i);
        b.store(small, i, v);
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    let s_home = acc.structure_for(small).unwrap();
    let b_home = acc.structure_for(big).unwrap();
    assert!(matches!(
        acc.structure(s_home).kind,
        StructureKind::Scratchpad { .. }
    ));
    assert!(matches!(
        acc.structure(b_home).kind,
        StructureKind::Cache { .. }
    ));
    // Two junctions in the loop task (one per structure).
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    assert_eq!(acc.task(lp).dataflow.junctions.len(), 2);
}

#[test]
fn serial_memory_carried_loop_flagged() {
    let mut m = Module::new("serial");
    let a = m.add_mem_object("a", ScalarType::I32, 64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    // a[0] += i through memory: carried.
    b.for_loop(0, ValueRef::int(8), 1, |b, i| {
        let v = b.load(a, ValueRef::int(0));
        let w = b.add(v, i);
        b.store(a, ValueRef::int(0), w);
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    assert!(matches!(
        acc.task(lp).kind,
        TaskKind::Loop { serial: true, .. }
    ));
}

#[test]
fn dynamic_bound_becomes_arg() {
    let mut m = Module::new("dyn");
    let a = m.add_mem_object("a", ScalarType::I32, 128);
    let mut b = FunctionBuilder::new("main", &[Type::I64]).with_mem(&m);
    let n = b.arg(0);
    b.for_loop(0, n, 1, |b, i| {
        b.store(a, i, i);
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = xlate(&m);
    let lp = acc
        .task_ids()
        .find(|&t| acc.task(t).kind.is_loop())
        .unwrap();
    match &acc.task(lp).kind {
        TaskKind::Loop { spec, .. } => {
            assert!(
                matches!(spec.hi, ArgExpr::Arg(_)),
                "dynamic bound should be an arg"
            );
        }
        TaskKind::Region => panic!("expected loop"),
    }
}

#[test]
fn non_canonical_loop_rejected() {
    // A hand-built loop whose increment is `i = i * 2` (non-affine step).
    use muir_mir::instr::{BinOp, Op};
    let mut m = Module::new("bad");
    let mut b = FunctionBuilder::new("main", &[]);
    let header = b.block("h");
    let body = b.block("b");
    let exit = b.block("x");
    b.br(header);
    b.switch_to(header);
    let phi = b.phi(
        Type::I64,
        &[
            (ValueRef::int(1), muir_mir::instr::BlockId(0)),
            (ValueRef::int(1), muir_mir::instr::BlockId(0)),
        ],
    );
    let c = b.icmp(CmpPred::Lt, phi, ValueRef::int(64));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let next = b.push(
        Op::Bin(BinOp::Mul),
        Some(Type::I64),
        vec![phi, ValueRef::int(2)],
    );
    b.br(header);
    b.switch_to(exit);
    b.ret(None);
    let mut f = b.finish();
    // Patch the phi's latch incoming to the multiply and the latch block.
    let phi_id = phi.as_instr().unwrap();
    let latch = body;
    if let Op::Phi { preds } = &mut f.instrs[phi_id.0 as usize].op {
        preds[1] = latch;
    }
    f.instrs[phi_id.0 as usize].operands[1] = next;
    m.add_function(f);
    let e = translate(&m, &FrontendConfig::default()).unwrap_err();
    assert!(e.message.contains("increment"), "{e}");
}

#[test]
fn multiple_returns_rejected() {
    let mut m = Module::new("two_rets");
    let mut b = FunctionBuilder::new("main", &[Type::I64]).returns(Type::I64);
    let c = b.icmp(CmpPred::Lt, b.arg(0), ValueRef::int(0));
    let t = b.block("t");
    let f = b.block("f");
    b.cond_br(c, t, f);
    b.switch_to(t);
    b.ret(Some(ValueRef::int(1)));
    b.switch_to(f);
    b.ret(Some(ValueRef::int(2)));
    m.add_function(b.finish());
    let e = translate(&m, &FrontendConfig::default()).unwrap_err();
    assert!(
        e.message.contains("return") || e.message.contains("predicated"),
        "{e}"
    );
}

#[test]
fn invalid_module_rejected_by_verifier() {
    use muir_mir::instr::{BinOp, Op};
    let mut m = Module::new("invalid");
    let mut b = FunctionBuilder::new("main", &[]);
    // Dangling operand reference.
    b.push(
        Op::Bin(BinOp::Add),
        Some(Type::I64),
        vec![
            ValueRef::Instr(muir_mir::instr::InstrId(99)),
            ValueRef::int(0),
        ],
    );
    b.ret(None);
    m.add_function(b.finish());
    let e = translate(&m, &FrontendConfig::default()).unwrap_err();
    assert!(e.message.contains("verification"), "{e}");
}

#[test]
fn negative_step_rejected() {
    use muir_mir::instr::{BinOp, Op};
    let mut m = Module::new("negstep");
    let mut b = FunctionBuilder::new("main", &[]);
    let header = b.block("h");
    let body = b.block("b");
    let exit = b.block("x");
    b.br(header);
    b.switch_to(header);
    let phi = b.phi(
        Type::I64,
        &[
            (ValueRef::int(8), muir_mir::instr::BlockId(0)),
            (ValueRef::int(8), muir_mir::instr::BlockId(0)),
        ],
    );
    let c = b.icmp(CmpPred::Lt, phi, ValueRef::int(64));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let next = b.push(
        Op::Bin(BinOp::Add),
        Some(Type::I64),
        vec![phi, ValueRef::int(-1)],
    );
    b.br(header);
    b.switch_to(exit);
    b.ret(None);
    let mut f = b.finish();
    let phi_id = phi.as_instr().unwrap();
    if let Op::Phi { preds } = &mut f.instrs[phi_id.0 as usize].op {
        preds[1] = body;
    }
    f.instrs[phi_id.0 as usize].operands[1] = next;
    m.add_function(f);
    let e = translate(&m, &FrontendConfig::default()).unwrap_err();
    assert!(e.message.contains("positive"), "{e}");
}
