//! Benches — one per paper table/figure, timing the experiment kernels
//! (translate → transform → simulate) on representative workloads.
//!
//! A self-contained harness (no external bench framework): each kernel is
//! warmed once, then timed over a fixed number of iterations and reported
//! as min/mean wall-clock time. `cargo bench` regenerates timing for the
//! harness itself; the actual table/figure *contents* come from
//! `cargo run --release -p muir-bench --bin experiments`.

use muir_bench::{
    baseline, fig11_point, fig12_sweep, fig15_point, fig16_sweep, fig9_point, full_stack,
    optimized, run_verified,
};
use muir_rtl::circuit::lower_to_circuit;
use muir_rtl::cost::{estimate, Tech};
use muir_rtl::emit_chisel;
use muir_workloads::by_name;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Time `f` over `iters` iterations (after one warmup) and print a row.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f()); // warmup
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters;
    println!("{name:<40} {iters:>4} iters   min {min:>10.3?}   mean {mean:>10.3?}");
}

fn main() {
    println!("muir-bench paper_benches (plain harness)\n");

    let gemm = by_name("GEMM").unwrap();
    let gemm_acc = baseline(&gemm);
    let gemm_comp = muir_bench::sealed(&gemm, &gemm_acc);
    bench("table2/cost_model_gemm", 20, || {
        let f = estimate(&gemm_comp, Tech::FpgaArria10);
        let a = estimate(&gemm_comp, Tech::Asic28);
        (f, a)
    });

    let softm8 = by_name("SOFTM8").unwrap();
    bench("fig9/softm8_uir_vs_hls", 5, || fig9_point(&softm8));

    let rgb = by_name("RGB2YUV").unwrap();
    bench("fig11/rgb2yuv_fusion_point", 5, || fig11_point(&rgb));

    let img = by_name("IMG-SCALE").unwrap();
    bench("fig12/img_scale_tiling_sweep", 3, || fig12_sweep(&img));

    let pair = muir_workloads::inhouse::tensor_pairs().remove(2); // CONV[T]
    bench("fig15/conv_t_tensor_vs_scalar", 3, || fig15_point(&pair));

    let conv = by_name("CONV").unwrap();
    bench("fig16/conv_cache_banking_sweep", 3, || fig16_sweep(&conv));

    let softm16 = by_name("SOFTM16").unwrap();
    bench("fig17/softm16_full_stack", 3, || {
        let (acc, _) = optimized(&softm16, &full_stack(softm16.class));
        run_verified(&softm16, &acc).cycles
    });

    let stencil = by_name("STENCIL").unwrap();
    let stencil_acc = baseline(&stencil);
    bench("table4/firrtl_lowering_stencil", 10, || {
        lower_to_circuit(&stencil_acc).total_elements()
    });

    let fft = by_name("FFT").unwrap();
    bench("toolchain/translate_fft", 10, || baseline(&fft));
    let fft_acc = baseline(&fft);
    let fft_comp = muir_bench::sealed(&fft, &fft_acc);
    bench("toolchain/emit_chisel_fft", 10, || {
        emit_chisel(&fft_comp).len()
    });
}
