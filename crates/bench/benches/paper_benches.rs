//! Criterion benches — one per paper table/figure, timing the experiment
//! kernels (translate → transform → simulate) on representative workloads.
//!
//! `cargo bench` regenerates timing for the harness itself; the actual
//! table/figure *contents* come from `cargo run --release -p muir-bench
//! --bin experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use muir_bench::{baseline, fig11_point, fig12_sweep, fig15_point, fig16_sweep, fig9_point,
                 full_stack, optimized, run_verified};
use muir_rtl::circuit::lower_to_circuit;
use muir_rtl::cost::{estimate, Tech};
use muir_rtl::emit_chisel;
use muir_workloads::by_name;

fn bench_table2_cost_model(c: &mut Criterion) {
    let w = by_name("GEMM").unwrap();
    let acc = baseline(&w);
    c.bench_function("table2/cost_model_gemm", |b| {
        b.iter(|| {
            let f = estimate(&acc, Tech::FpgaArria10);
            let a = estimate(&acc, Tech::Asic28);
            criterion::black_box((f, a))
        })
    });
}

fn bench_fig9_hls_comparison(c: &mut Criterion) {
    let w = by_name("SOFTM8").unwrap();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("softm8_uir_vs_hls", |b| b.iter(|| criterion::black_box(fig9_point(&w))));
    g.finish();
}

fn bench_fig11_fusion(c: &mut Criterion) {
    let w = by_name("RGB2YUV").unwrap();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("rgb2yuv_fusion_point", |b| {
        b.iter(|| criterion::black_box(fig11_point(&w)))
    });
    g.finish();
}

fn bench_fig12_tiling(c: &mut Criterion) {
    let w = by_name("IMG-SCALE").unwrap();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("img_scale_tiling_sweep", |b| {
        b.iter(|| criterion::black_box(fig12_sweep(&w)))
    });
    g.finish();
}

fn bench_fig15_tensor(c: &mut Criterion) {
    let pair = muir_workloads::inhouse::tensor_pairs().remove(2); // CONV[T]
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("conv_t_tensor_vs_scalar", |b| {
        b.iter(|| criterion::black_box(fig15_point(&pair)))
    });
    g.finish();
}

fn bench_fig16_banking(c: &mut Criterion) {
    let w = by_name("CONV").unwrap();
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("conv_cache_banking_sweep", |b| {
        b.iter(|| criterion::black_box(fig16_sweep(&w)))
    });
    g.finish();
}

fn bench_fig17_stack(c: &mut Criterion) {
    let w = by_name("SOFTM16").unwrap();
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    g.bench_function("softm16_full_stack", |b| {
        b.iter(|| {
            let (acc, _) = optimized(&w, &full_stack(w.class));
            criterion::black_box(run_verified(&w, &acc).cycles)
        })
    });
    g.finish();
}

fn bench_table4_lowering(c: &mut Criterion) {
    let w = by_name("STENCIL").unwrap();
    let acc = baseline(&w);
    c.bench_function("table4/firrtl_lowering_stencil", |b| {
        b.iter(|| criterion::black_box(lower_to_circuit(&acc).total_elements()))
    });
}

fn bench_pipeline_stages(c: &mut Criterion) {
    // The toolchain itself: translate and emit.
    let w = by_name("FFT").unwrap();
    c.bench_function("toolchain/translate_fft", |b| {
        b.iter(|| criterion::black_box(baseline(&w)))
    });
    let acc = baseline(&w);
    c.bench_function("toolchain/emit_chisel_fft", |b| {
        b.iter(|| criterion::black_box(emit_chisel(&acc).len()))
    });
}

criterion_group!(
    benches,
    bench_table2_cost_model,
    bench_fig9_hls_comparison,
    bench_fig11_fusion,
    bench_fig12_tiling,
    bench_fig15_tensor,
    bench_fig16_banking,
    bench_fig17_stack,
    bench_table4_lowering,
    bench_pipeline_stages,
);
criterion_main!(benches);
