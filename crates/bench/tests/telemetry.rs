//! The zero-perturbation guard for the telemetry layer: with the global
//! registry enabled, every workload must produce **bit-identical**
//! observables to the disabled run — cycle counts, end-state hashes
//! (results + final memory image) under all three schedulers, and the
//! exact Chrome-trace bytes of a traced run. Telemetry may only observe.
//!
//! This lives in its own integration-test binary on purpose: it toggles
//! the process-global `muir_core::telemetry` flag, which would race with
//! unit tests sharing the registry if it ran inside the library harness.

use muir_bench::baseline;
use muir_core::compiled::CompiledAccel;
use muir_core::telemetry;
use muir_sim::{end_state_hash, simulate_compiled, SchedulerKind, SimConfig, TraceConfig};
use muir_workloads::all;

/// The per-workload observable fingerprint a telemetry toggle must not
/// move: `(cycles, end-state hash)` per scheduler plus the traced run's
/// serialized Chrome JSON.
struct Fingerprint {
    plain: Vec<(u64, u64)>,
    trace_bytes: String,
}

fn fingerprint(comp: &CompiledAccel, w: &muir_workloads::Workload) -> Fingerprint {
    let mut plain = Vec::new();
    for kind in [
        SchedulerKind::Dense,
        SchedulerKind::Ready,
        SchedulerKind::Parallel,
    ] {
        let mut cfg = SimConfig {
            scheduler: kind,
            ..SimConfig::default()
        };
        if kind == SchedulerKind::Parallel {
            cfg.threads = 2;
        }
        let mut mem = w.fresh_memory();
        let r = simulate_compiled(comp, &mut mem, &[], &cfg)
            .unwrap_or_else(|e| panic!("{}: {kind:?}: {e}", w.name));
        plain.push((r.cycles, end_state_hash(&r, &mem)));
    }

    let cfg = SimConfig {
        trace: TraceConfig::on(),
        ..SimConfig::default()
    };
    let mut mem = w.fresh_memory();
    let r = simulate_compiled(comp, &mut mem, &[], &cfg)
        .unwrap_or_else(|e| panic!("{}: traced: {e}", w.name));
    Fingerprint {
        plain,
        trace_bytes: r.trace.expect("tracing was on").to_chrome_json(),
    }
}

#[test]
fn metrics_on_and_off_are_bit_identical_on_every_workload() {
    let mut failures = Vec::new();
    for w in all() {
        let acc = baseline(&w);
        let comp = CompiledAccel::compile_cached(&acc)
            .unwrap_or_else(|e| panic!("{}: compile: {e}", w.name));

        telemetry::set_enabled(false);
        let off = fingerprint(&comp, &w);
        telemetry::set_enabled(true);
        telemetry::reset();
        let on = fingerprint(&comp, &w);
        telemetry::set_enabled(false);

        if off.plain != on.plain {
            failures.push(format!(
                "{}: (cycles, end-state hash) moved with telemetry on: \
                 off {:?} vs on {:?}",
                w.name, off.plain, on.plain
            ));
        }
        if off.trace_bytes != on.trace_bytes {
            failures.push(format!(
                "{}: traced Chrome JSON bytes differ with telemetry on \
                 ({} vs {} bytes)",
                w.name,
                off.trace_bytes.len(),
                on.trace_bytes.len()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "telemetry perturbed {} workload(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
