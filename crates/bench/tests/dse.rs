//! Differential and property-based gates for the DSE driver.
//!
//! Four claims, each load-bearing for ROADMAP item 3:
//!
//! 1. **Pareto semantics** — fuzzed point sets uphold the front
//!    invariants (nothing on the front is dominated, everything off the
//!    front is, the front is sorted and duplicate-free);
//! 2. **report determinism** — same seed ⇒ byte-identical report across
//!    worker-thread counts and store temperature, with a warm sweep
//!    served entirely from the store (the PR 6 gate, now for DSE);
//! 3. **candidate honesty** — what the report records via the eval
//!    service matches a cold `simulate_compiled` re-run of the same
//!    config, cycle for cycle and end-state hash for end-state hash;
//! 4. **the conv1d example's pinned sweep** recovers its known 10-point
//!    front exactly.

use muir_bench::dse::{
    conv1d_sweep, dominates, explore, pareto_front, report_json, validate_dse_json, Candidate,
    DseParams, WorkloadFront, CONV1D_BUDGET, CONV1D_WORKLOAD,
};
use muir_core::rng::SplitMix64;
use muir_sim::SimConfig;
use muir_uopt::config::PassSpace;
use muir_workloads::by_name;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// 1. Pareto-front invariants over fuzzed point sets
// ---------------------------------------------------------------------------

#[test]
fn pareto_invariants_hold_on_fuzzed_point_sets() {
    let mut rng = SplitMix64::salted(0x9a2e70, 0xf207);
    for case in 0..200 {
        let n = 1 + rng.below(40) as usize;
        // Small coordinate ranges force duplicates and ties — the edge
        // cases a naive strict-dominance front gets wrong.
        let lim = 1 + rng.below(30);
        let points: Vec<(u64, u64)> = (0..n).map(|_| (rng.below(lim), rng.below(lim))).collect();
        let front = pareto_front(&points);
        assert!(!front.is_empty(), "case {case}: front of {points:?} empty");
        // No front point is dominated by any evaluated candidate.
        for f in &front {
            for p in &points {
                assert!(
                    !dominates(*p, *f),
                    "case {case}: front point {f:?} dominated by {p:?}"
                );
            }
        }
        // Every off-front candidate is dominated by some front point.
        for p in &points {
            if !front.contains(p) {
                assert!(
                    front.iter().any(|f| dominates(*f, *p)),
                    "case {case}: off-front {p:?} dominated by no front point"
                );
            }
        }
        // Sorted, duplicate-free, mutually incomparable.
        for w in front.windows(2) {
            assert!(
                w[0].0 < w[1].0 && w[0].1 > w[1].1,
                "case {case}: front not strictly sorted: {front:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Report determinism: threads × store temperature
// ---------------------------------------------------------------------------

#[test]
fn report_is_byte_identical_across_threads_and_store_temperature() {
    let w = by_name("RELU[T]").expect("suite workload");
    let root = std::env::temp_dir().join(format!("muir-dse-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mk = |threads| DseParams {
        seed: 0x1de7e4,
        budget: 8,
        threads,
    };

    // Cold, 1 thread: populates the store.
    let (cold, cold_stats) = explore(&w, &mk(1), Some(&root));
    assert_eq!(cold_stats.store_hits, 0, "fresh store cannot hit");
    assert_eq!(cold_stats.recomputed, cold_stats.artifacts);
    let cold_report = report_json(&mk(1), std::slice::from_ref(&cold));

    // Warm, 2 threads: every artifact group must be served from disk —
    // zero simulation work, same bytes (the PR 6 warm gate for DSE).
    let (warm, warm_stats) = explore(&w, &mk(2), Some(&root));
    assert_eq!(
        warm_stats.store_hits, warm_stats.artifacts,
        "warm sweep must hit the store on every artifact group: {warm_stats:?}"
    );
    assert_eq!(warm_stats.recomputed, 0, "{warm_stats:?}");
    let warm_report = report_json(&mk(2), std::slice::from_ref(&warm));

    // Storeless, 4 threads: pure simulation, same bytes again.
    let (none, _) = explore(&w, &mk(4), None);
    let none_report = report_json(&mk(4), std::slice::from_ref(&none));

    assert_eq!(cold_report, warm_report, "cold vs warm report bytes");
    assert_eq!(
        cold_report, none_report,
        "1-thread vs 4-thread report bytes"
    );
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// 3. Candidate honesty: the report vs a cold standalone re-run
// ---------------------------------------------------------------------------

#[test]
fn candidates_are_honest_against_cold_simulation() {
    let w = by_name("SOFTM8").expect("suite workload");
    let params = DseParams {
        seed: 0x40e57,
        budget: 6,
        threads: 1,
    };
    let (front, _) = explore(&w, &params, None);
    let space = PassSpace::full();
    // A seeded sample of explored candidates, re-run cold outside the
    // service: the report's numbers must be what anyone re-deriving the
    // config from its index would measure.
    let mut rng = SplitMix64::salted(params.seed, 0x40e57e);
    for _ in 0..3 {
        let c: &Candidate = &front.candidates[rng.below(front.candidates.len() as u64) as usize];
        let cfg = space.nth(c.index);
        assert_eq!(cfg.config_hash(), c.config_hash, "index {} config", c.index);
        let (acc, _) = muir_bench::optimized(&w, &cfg.pipeline());
        let comp = muir_core::compiled::CompiledAccel::compile_cached(&acc).expect("verifies");
        assert_eq!(
            comp.content_hash(),
            c.artifact,
            "index {} artifact",
            c.index
        );
        let mut mem = w.fresh_memory();
        let r = muir_sim::simulate_compiled(&comp, &mut mem, &[], &SimConfig::default())
            .expect("simulates");
        assert_eq!(r.cycles, c.cycles, "index {} cycles", c.index);
        assert_eq!(
            muir_sim::end_state_hash(&r, &mem),
            c.end_state,
            "index {} end state",
            c.index
        );
    }
}

// ---------------------------------------------------------------------------
// 4. The conv1d example's pinned sweep
// ---------------------------------------------------------------------------

#[test]
fn conv1d_sweep_recovers_known_ten_point_front() {
    let (front, stats) = conv1d_sweep(1);
    assert_eq!(front.name, CONV1D_WORKLOAD);
    assert_eq!(stats.candidates, CONV1D_BUDGET);
    assert_eq!(
        front.front,
        vec![
            (149, 18461),
            (150, 16627),
            (166, 9619),
            (175, 9253),
            (200, 8823),
            (251, 4935),
            (358, 3344),
            (370, 3227),
            (1846, 3109),
            (1894, 2895),
        ],
        "the example's pinned front moved — update the example docs and \
         EXPERIMENTS.md if this is intentional"
    );
    let base = front
        .candidates
        .iter()
        .find(|c| c.index == 0)
        .expect("baseline sampled");
    assert_eq!(
        (base.cycles, base.area_score),
        *front.front.last().expect("non-empty"),
        "the unoptimized design anchors the cheap end of this front"
    );
}

// ---------------------------------------------------------------------------
// Schema gate: the checked-in schema accepts real reports and the
// validator rejects semantic corruption.
// ---------------------------------------------------------------------------

fn schema() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scripts/dse_schema.json");
    std::fs::read_to_string(path).expect("scripts/dse_schema.json is checked in")
}

fn synthetic_result() -> WorkloadFront {
    let mk = |index, cycles, area_score, dominated| Candidate {
        index,
        config: PassSpace::full().nth(index),
        config_hash: PassSpace::full().nth(index).config_hash(),
        artifact: 0x1000 + index,
        cycles,
        area_score,
        fmax_mhz: 400.0,
        power_mw: 500.0,
        end_state: 0x2000 + index,
        dominated,
    };
    WorkloadFront {
        name: "SYNTH".to_string(),
        candidates: vec![
            mk(0, 100, 10, false),
            mk(1, 50, 20, false),
            mk(2, 120, 30, true),
        ],
        front: vec![(50, 20), (100, 10)],
    }
}

#[test]
fn schema_accepts_wellformed_reports_and_rejects_corruption() {
    let params = DseParams::default();
    let good = report_json(&params, &[synthetic_result()]);
    let s = validate_dse_json(&good, &schema()).expect("well-formed report validates");
    assert_eq!((s.workloads, s.candidates, s.front_points), (1, 3, 2));
    assert_eq!(s.nontrivial_fronts, 0, "2-point front is trivial");

    // A dropped front point is a semantic violation, not just a shape one.
    let missing_front = good.replace("        {\"cycles\": 50, \"area_score\": 20},\n", "");
    let err = validate_dse_json(&missing_front, &schema()).unwrap_err();
    assert!(err.contains("not the Pareto front"), "{err}");

    // A flipped dominated flag contradicts the front.
    let mut lying = synthetic_result();
    lying.candidates[2].dominated = false;
    let err = validate_dse_json(&report_json(&params, &[lying]), &schema()).unwrap_err();
    assert!(err.contains("dominated=false"), "{err}");

    // A missing required candidate field is a shape violation.
    let shapeless = good.replace("\"end_state\": \"0x0000000000002000\", ", "");
    let err = validate_dse_json(&shapeless, &schema()).unwrap_err();
    assert!(err.contains("missing `end_state`"), "{err}");
}
