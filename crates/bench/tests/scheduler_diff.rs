//! Differential property test: the event-driven ready-set scheduler must
//! be observably indistinguishable from the dense per-cycle scanner on
//! every workload — same cycle count, same results, same `SimStats`
//! (minus the scheduler-private visit counter), same trace stream — in
//! plain, traced, and fault-injected runs.

use muir_bench::sched::check_workload;
use muir_workloads::all;

#[test]
fn ready_scheduler_matches_dense_on_every_workload() {
    let mut failures = Vec::new();
    for (i, w) in all().iter().enumerate() {
        if let Err(e) = check_workload(w, i) {
            failures.push(format!("{}: {e}", w.name));
        }
    }
    assert!(
        failures.is_empty(),
        "scheduler divergence on {} workload(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
