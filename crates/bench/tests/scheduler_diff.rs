//! Differential property tests: every scheduler must be observably
//! indistinguishable from the dense per-cycle scanner — same cycle count,
//! same results, same `SimStats` (minus the scheduler-private visit
//! counter), same trace stream, same typed errors — in plain, traced, and
//! fault-injected runs, at every planning thread count.
//!
//! Two corpora: the 21 real workloads (full 1/2/4/8-thread sweep), and a
//! seeded fuzz corpus of ≥200 generated μIR graphs (`testgen`), each run
//! under all three schedulers in all three modes with shrink-by-seed
//! reporting.

use muir_bench::sched::check_workload_full;
use muir_bench::testgen;
use muir_workloads::all;

#[test]
fn every_scheduler_matches_dense_on_every_workload() {
    let mut failures = Vec::new();
    for (i, w) in all().iter().enumerate() {
        if let Err(e) = check_workload_full(w, i) {
            failures.push(format!("{}: {e}", w.name));
        }
    }
    assert!(
        failures.is_empty(),
        "scheduler divergence on {} workload(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn schedulers_match_on_200_fuzzed_graphs() {
    // Fixed corpus seed: the suite replays the same 200 graphs every run;
    // `experiments fuzz --seed <s>` explores fresh corpora.
    testgen::run_seeds(0xd1f_f00d, 200).unwrap_or_else(|e| panic!("{e}"));
}
