//! μopt pass idempotence: applying any pass a second time must be a
//! no-op, observed through the sealed artifact's content hash. This is
//! the property that makes the compile cache sound for optimizer loops —
//! if re-running a pass could keep perturbing the graph, "same content →
//! same artifact" would silently become "same pipeline → different
//! hardware".
//!
//! Two corpora, mirroring the scheduler differential suite: the 21 real
//! workloads and 50 seeded fuzz graphs from `testgen`.

use muir_bench::{baseline, testgen};
use muir_core::content_hash;
use muir_core::rng::SplitMix64;
use muir_frontend::{translate, FrontendConfig};
use muir_uopt::passes::{
    CacheBanking, ExecutionTiling, MemoryLocalization, ScratchpadBanking, TaskFilter, TaskQueueing,
};
use muir_uopt::simplify::{Cse, Simplify};
use muir_uopt::{lower_tensors::LowerTensors, passes::OpFusion, Pass};
use muir_workloads::all;

/// Every pass the repo ships, with representative parameters.
fn pass_suite() -> Vec<(&'static str, Box<dyn Pass>)> {
    vec![
        ("task-queueing", Box::new(TaskQueueing::all(8))),
        ("tiling-spawned", Box::new(ExecutionTiling::spawned(4))),
        (
            "tiling-leaf-loops",
            Box::new(ExecutionTiling {
                tiles: 4,
                filter: TaskFilter::LeafLoops,
            }),
        ),
        ("mem-localization", Box::new(MemoryLocalization::default())),
        ("spad-banking", Box::new(ScratchpadBanking { banks: 4 })),
        ("cache-banking", Box::new(CacheBanking { banks: 4 })),
        ("op-fusion", Box::new(OpFusion::default())),
        ("lower-tensors", Box::new(LowerTensors)),
        ("simplify", Box::new(Simplify)),
        ("cse", Box::new(Cse)),
    ]
}

/// Apply `pass` twice to `acc`; the second application must leave the
/// graph's content hash unchanged.
fn assert_idempotent(label: &str, pass: &dyn Pass, acc: &mut muir_core::Accelerator) {
    pass.run(acc)
        .unwrap_or_else(|e| panic!("{label}: first application failed: {e}"));
    let once = content_hash(acc);
    pass.run(acc)
        .unwrap_or_else(|e| panic!("{label}: second application failed: {e}"));
    let twice = content_hash(acc);
    assert_eq!(
        once,
        twice,
        "{label}: pass `{}` is not idempotent (hash {once:016x} -> {twice:016x})",
        pass.name()
    );
}

#[test]
fn every_pass_is_idempotent_on_every_workload() {
    for w in all() {
        for (tag, pass) in pass_suite() {
            let mut acc = baseline(&w);
            assert_idempotent(&format!("{}/{tag}", w.name), pass.as_ref(), &mut acc);
        }
    }
}

#[test]
fn every_pass_is_idempotent_on_fuzzed_graphs() {
    // 50 seeded graphs at the default fuzzing size; each starts from the
    // untransformed translation so the pass under test is the only
    // variable.
    let mut rng = SplitMix64::new(0x1de0_9070_5ea1_ed00);
    for i in 0..50u64 {
        let seed = rng.next_u64();
        let case = testgen::gen_case(seed, 2);
        for (tag, pass) in pass_suite() {
            let mut acc = translate(&case.module, &FrontendConfig::default())
                .unwrap_or_else(|e| panic!("fuzz {i} (0x{seed:016x}): translate: {e}"));
            assert_idempotent(
                &format!("fuzz {i} (0x{seed:016x})/{tag}"),
                pass.as_ref(),
                &mut acc,
            );
        }
    }
}

#[test]
fn stacked_pipeline_is_idempotent_as_a_whole() {
    // The full Figure 17 stack, run twice through the manager: the second
    // run must neither fail nor change the sealed artifact.
    for w in all() {
        let mut acc = baseline(&w);
        let pm = muir_bench::full_stack(w.class);
        pm.run(&mut acc)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let once = content_hash(&acc);
        pm.run(&mut acc)
            .unwrap_or_else(|e| panic!("{}: second run: {e}", w.name));
        assert_eq!(
            once,
            content_hash(&acc),
            "{}: full stack is not idempotent",
            w.name
        );
    }
}
