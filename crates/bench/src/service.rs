//! Fault-tolerant batch evaluation service over the persistent store.
//!
//! [`EvalService`] is a long-lived front end for evaluating design points
//! of one sealed artifact: a sharded job queue feeding
//! [`muir_sim::simulate_batch_compiled`] workers, with the robustness
//! ladder wrapped around every evaluation:
//!
//! 1. **dedup before dispatch** — identical pending design points (same
//!    artifact, config, arguments, and initial memory) coalesce to one
//!    execution; every submitter gets the shared outcome;
//! 2. **memoization** — results are looked up in the [`Store`] before any
//!    simulation work; a warm hit skips the engine entirely;
//! 3. **deadlines** — a per-job cycle budget is enforced cooperatively by
//!    the simulator's own cycle-limit watchdog (the engine checks its
//!    budget every cycle, so a runaway job stops at the deadline and
//!    surfaces as the *transient* `E-SIM-LIMIT`);
//! 4. **bounded retry with seeded backoff** — transient failures
//!    ([`SimError::is_transient`]) are retried up to a bounded attempt
//!    count with deterministic exponential backoff; each retry doubles
//!    the cycle budget up to the job's own `max_cycles`, so a
//!    deadline-clipped job gets a real second chance;
//! 5. **degradation** — any store failure is recorded as a typed warning
//!    (`E-STORE-*`) and the evaluation recomputes in memory; the store
//!    can never fail a job, only fail to accelerate it.

use muir_core::rng::SplitMix64;
use muir_core::{telemetry, CompiledAccel};
use muir_mir::interp::Memory;
use muir_mir::value::Value;
use muir_sim::{
    end_state_hash, simulate_batch_compiled, simulate_compiled, BatchJob, SimConfig, SimError,
    SimResult,
};
use muir_store::{memoizable, ResultKey, Store, StoredEval};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Retry policy for transient failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (≥ 1).
    pub max_attempts: u32,
    /// Base backoff in milliseconds; retry *k* sleeps roughly
    /// `base · 2^(k-1)` plus seeded jitter below `base`. 0 disables
    /// sleeping entirely (tests, CI).
    pub base_backoff_ms: u64,
    /// Seed of the jitter stream — backoff schedules are reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 0,
            seed: 0x5e91_11ce,
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Queue shards; pending work lands in shard `key.job % shards` and
    /// each shard is drained as one batch (≥ 1).
    pub shards: usize,
    /// Worker threads per batch dispatch.
    pub threads: usize,
    /// Per-job deadline as a cycle budget (0 = no deadline). Enforced
    /// cooperatively: the job's `max_cycles` is clamped to this budget,
    /// so the simulator's watchdog stops the run at the deadline.
    pub deadline_cycles: u64,
    /// Transient-failure retry policy.
    pub retry: RetryPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            threads: 1,
            deadline_cycles: 0,
            retry: RetryPolicy::default(),
        }
    }
}

/// One evaluation request: a design point to run on the service's sealed
/// artifact.
#[derive(Debug, Clone)]
pub struct EvalJob {
    /// Simulation parameters.
    pub cfg: SimConfig,
    /// Root-task arguments.
    pub args: Vec<Value>,
    /// Initial memory image.
    pub mem: Memory,
}

/// The outcome of one submitted job, plus its provenance.
#[derive(Debug)]
pub struct EvalOutcome {
    /// The simulation outcome — identical to a standalone
    /// [`simulate_compiled`] call with the same inputs.
    pub outcome: Result<SimResult, SimError>,
    /// The memory image after the run (the submitted image, unchanged,
    /// when the run failed before completing).
    pub mem: Memory,
    /// Whether the result came from the persistent store (no simulation
    /// work was done for this submission).
    pub from_store: bool,
    /// Simulation attempts spent (0 for a store hit, 1 for a clean
    /// first-try run, more after retries).
    pub attempts: u32,
    /// Whether this submission was deduplicated onto another identical
    /// pending job's execution.
    pub coalesced: bool,
    /// Typed store warnings (`E-STORE-*` in each string) hit while
    /// serving this job. Non-empty means the store degraded and the
    /// result was recomputed in memory — never that the result is wrong.
    pub store_warnings: Vec<String>,
    /// End-to-end wall time of this submission through the service, in
    /// microseconds: from the start of the drain that served it until
    /// its outcome (queueing, store probe, simulation, and retries
    /// included). Members of a coalesced group share their group's time.
    pub wall_us: u64,
}

impl EvalOutcome {
    /// Content hash of the complete end state (outcome + final memory);
    /// errors hash their display text.
    pub fn end_state(&self) -> u64 {
        match &self.outcome {
            Ok(r) => end_state_hash(r, &self.mem),
            Err(e) => {
                let mut h = muir_core::ContentHasher::new();
                h.push(e.to_string().as_bytes());
                h.finish()
            }
        }
    }
}

/// Aggregate counters of one service instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Distinct executions after dedup (groups).
    pub executed_groups: u64,
    /// Submissions served by coalescing onto an identical pending job.
    pub coalesced: u64,
    /// Groups served from the persistent store.
    pub store_hits: u64,
    /// Groups that missed the store (or had no store) and simulated.
    pub recomputed: u64,
    /// Retry attempts spent on transient failures.
    pub retries: u64,
    /// Jobs whose cycle budget was clipped by the service deadline.
    pub deadline_clipped: u64,
    /// Typed store errors degraded into warnings.
    pub store_warnings: u64,
    /// Jobs with a recorded end-to-end wall time (drained submissions).
    pub jobs_timed: u64,
    /// Median per-job end-to-end wall time, microseconds.
    pub p50_wall_us: u64,
    /// 95th-percentile per-job end-to-end wall time, microseconds.
    pub p95_wall_us: u64,
    /// Maximum per-job end-to-end wall time, microseconds.
    pub max_wall_us: u64,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "service: {} submitted, {} executed groups, {} coalesced",
            self.submitted, self.executed_groups, self.coalesced
        )?;
        writeln!(
            f,
            "  store hits {} / recomputed {} / warnings {}",
            self.store_hits, self.recomputed, self.store_warnings
        )?;
        write!(
            f,
            "  retries {}, deadline-clipped {}",
            self.retries, self.deadline_clipped
        )?;
        if self.jobs_timed > 0 {
            write!(
                f,
                "\n  job wall us: p50 {} / p95 {} / max {} ({} timed)",
                self.p50_wall_us, self.p95_wall_us, self.max_wall_us, self.jobs_timed
            )?;
        }
        Ok(())
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// How one pending group will be served.
struct Group {
    /// Index of the representative submission.
    rep: usize,
    /// All submissions in the group (including `rep`).
    members: Vec<usize>,
    /// The group's store key (`None` when not memoizable).
    key: Option<ResultKey>,
    /// Store warnings accumulated while serving the group.
    warnings: Vec<String>,
}

/// The batch evaluation service for one sealed artifact.
pub struct EvalService {
    comp: Arc<CompiledAccel>,
    store: Option<Store>,
    config: ServiceConfig,
    pending: Vec<EvalJob>,
    stats: ServiceStats,
    /// Per-job end-to-end wall times (µs) across every drain so far.
    wall_us: Vec<u64>,
    /// Whether the artifact record has been persisted (it is written at
    /// most once per service — with the first successful result
    /// writeback, so a store that is never useful is never written to).
    artifact_recorded: bool,
}

impl EvalService {
    /// A service evaluating design points of `comp`, memoizing through
    /// `store` (pass `None` to run purely in memory).
    pub fn new(comp: Arc<CompiledAccel>, store: Option<Store>, config: ServiceConfig) -> Self {
        EvalService {
            comp,
            store,
            config,
            pending: Vec::new(),
            stats: ServiceStats::default(),
            wall_us: Vec::new(),
            artifact_recorded: false,
        }
    }

    /// Queue a job. Returns its submission index; [`EvalService::drain`]
    /// returns outcomes at the same indices.
    pub fn submit(&mut self, job: EvalJob) -> usize {
        self.stats.submitted += 1;
        self.pending.push(job);
        telemetry::count("service.submitted", 1);
        telemetry::gauge_set("service.queue_depth", self.pending.len() as u64);
        self.pending.len() - 1
    }

    /// Counters so far, with the per-job wall-time percentiles computed
    /// over every drained submission.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats;
        if !self.wall_us.is_empty() {
            let mut v = self.wall_us.clone();
            v.sort_unstable();
            s.jobs_timed = v.len() as u64;
            s.p50_wall_us = percentile(&v, 50);
            s.p95_wall_us = percentile(&v, 95);
            s.max_wall_us = *v.last().expect("non-empty");
        }
        s
    }

    /// Store counters (zeroed default when the service has no store).
    pub fn store_stats(&self) -> muir_store::StoreStats {
        self.store.as_ref().map(Store::stats).unwrap_or_default()
    }

    /// The artifact this service evaluates.
    pub fn artifact(&self) -> &CompiledAccel {
        &self.comp
    }

    /// Evaluate every pending job and return outcomes in submission
    /// order. Identical jobs coalesce; results come from the store when
    /// possible, from (batched, sharded) simulation otherwise; completed
    /// simulations are written back to the store.
    pub fn drain(&mut self) -> Vec<EvalOutcome> {
        let drain_t0 = Instant::now();
        let jobs = std::mem::take(&mut self.pending);
        let _drain_span = telemetry::span_with(
            "service",
            "service.drain",
            if telemetry::enabled() {
                format!("{} jobs", jobs.len())
            } else {
                String::new()
            },
        );
        telemetry::gauge_set("service.queue_depth", 0);
        let mut groups = {
            let _s = telemetry::span("service", "service.group");
            self.group(&jobs)
        };
        self.stats.executed_groups += groups.len() as u64;
        self.stats.coalesced += (jobs.len() - groups.len()) as u64;
        telemetry::count("service.executed_groups", groups.len() as u64);
        telemetry::count("service.coalesced", (jobs.len() - groups.len()) as u64);

        // Phase 1: store lookups. Hits fill their whole group; misses
        // (and typed store failures, degraded to warnings) queue for
        // simulation.
        let mut outcomes: Vec<Option<EvalOutcome>> = (0..jobs.len()).map(|_| None).collect();
        let mut to_run: Vec<Group> = Vec::new();
        for mut g in groups.drain(..) {
            let probed = {
                let _s = telemetry::span("store", "service.store_probe");
                self.probe_store(g.key, &mut g.warnings)
            };
            if let Some(hit) = probed {
                self.stats.store_hits += 1;
                self.stats.store_warnings += g.warnings.len() as u64;
                telemetry::count("service.store_hits", 1);
                telemetry::count("service.store_warnings", g.warnings.len() as u64);
                let wall = drain_t0.elapsed().as_micros() as u64;
                self.record_job_wall(wall, g.members.len());
                fill_group(&mut outcomes, &g, || EvalOutcome {
                    outcome: Ok(hit.result.clone()),
                    mem: hit.mem.clone(),
                    from_store: true,
                    attempts: 0,
                    coalesced: false,
                    store_warnings: g.warnings.clone(),
                    wall_us: wall,
                });
            } else {
                self.stats.recomputed += 1;
                telemetry::count("service.recomputed", 1);
                to_run.push(g);
            }
        }

        // Phase 2: shard the groups that must simulate and drain each
        // shard as one batch.
        let nshards = self.config.shards.max(1);
        let mut shards: Vec<Vec<Group>> = (0..nshards).map(|_| Vec::new()).collect();
        for g in to_run {
            let shard = g.key.map_or(g.rep, |k| k.job as usize) % nshards;
            shards[shard].push(g);
        }
        for (si, shard) in shards.into_iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            telemetry::observe(
                "service.batch_size",
                &telemetry::COUNT_BUCKETS,
                shard.len() as u64,
            );
            let batch: Vec<BatchJob> = shard
                .iter()
                .map(|g| {
                    let job = &jobs[g.rep];
                    BatchJob {
                        args: job.args.clone(),
                        mem: job.mem.clone(),
                        cfg: self.clamp_deadline(&job.cfg, true),
                    }
                })
                .collect();
            let sim_t0 = Instant::now();
            let runs = {
                let _s = telemetry::span_with(
                    "service",
                    "service.simulate",
                    if telemetry::enabled() {
                        format!("shard {si}: {} groups", batch.len())
                    } else {
                        String::new()
                    },
                );
                simulate_batch_compiled(&self.comp, batch, self.config.threads)
            };
            let per_run_wall_s = sim_t0.elapsed().as_secs_f64() / shard.len().max(1) as f64;
            for (mut g, run) in shard.into_iter().zip(runs) {
                let (outcome, mem, attempts) =
                    self.retry_transient(&jobs[g.rep], run.outcome, run.mem);
                if let Ok(result) = &outcome {
                    if telemetry::enabled() {
                        muir_sim::record_stats_telemetry(&result.stats, per_run_wall_s);
                        if let Some(p) = &result.profile {
                            muir_sim::record_profile_telemetry(p);
                        }
                    }
                    self.writeback(g.key, result, &mem, &mut g.warnings);
                }
                self.stats.store_warnings += g.warnings.len() as u64;
                telemetry::count("service.store_warnings", g.warnings.len() as u64);
                let wall = drain_t0.elapsed().as_micros() as u64;
                self.record_job_wall(wall, g.members.len());
                fill_group(&mut outcomes, &g, || EvalOutcome {
                    outcome: outcome.clone(),
                    mem: mem.clone(),
                    from_store: false,
                    attempts,
                    coalesced: false,
                    store_warnings: g.warnings.clone(),
                    wall_us: wall,
                });
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every submission received an outcome"))
            .collect()
    }

    /// Record one group's end-to-end wall time for each of its members
    /// (the per-job latency distribution behind `ServiceStats`'s
    /// p50/p95/max and the `service.job_wall_us` histogram).
    fn record_job_wall(&mut self, wall: u64, members: usize) {
        for _ in 0..members {
            self.wall_us.push(wall);
            telemetry::observe("service.job_wall_us", &telemetry::US_BUCKETS, wall);
        }
    }

    /// Group identical pending jobs. Keys are content hashes, so a
    /// collision is possible in principle; membership is confirmed by
    /// comparing the actual inputs against the representative, and a
    /// non-matching job opens its own group. Non-memoizable jobs (key
    /// `None`) never coalesce.
    fn group(&mut self, jobs: &[EvalJob]) -> Vec<Group> {
        let mut groups: Vec<Group> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let key = memoizable(&job.cfg)
                .then(|| ResultKey::new(&self.comp, &job.cfg, &job.args, &job.mem));
            let existing = groups
                .iter_mut()
                .find(|g| key.is_some() && g.key == key && jobs_identical(&jobs[g.rep], job));
            match existing {
                Some(g) => g.members.push(i),
                None => groups.push(Group {
                    rep: i,
                    members: vec![i],
                    key,
                    warnings: Vec::new(),
                }),
            }
        }
        groups
    }

    /// The job's config with the service deadline applied. `count`
    /// tallies the clip (true only on the initial dispatch, not on
    /// retries).
    fn clamp_deadline(&mut self, cfg: &SimConfig, count: bool) -> SimConfig {
        let mut c = cfg.clone();
        if self.config.deadline_cycles > 0 && c.max_cycles > self.config.deadline_cycles {
            c.max_cycles = self.config.deadline_cycles;
            if count {
                self.stats.deadline_clipped += 1;
                telemetry::count("service.deadline_clipped", 1);
            }
        }
        c
    }

    /// Bounded retry for transient failures, with deterministic
    /// exponential backoff and a doubling cycle budget (never past the
    /// job's own `max_cycles`).
    fn retry_transient(
        &mut self,
        job: &EvalJob,
        first: Result<SimResult, SimError>,
        first_mem: Memory,
    ) -> (Result<SimResult, SimError>, Memory, u32) {
        let mut outcome = first;
        let mut mem = first_mem;
        let mut attempts = 1u32;
        let mut budget = self.clamp_deadline(&job.cfg, false).max_cycles.max(1);
        while attempts < self.config.retry.max_attempts.max(1) {
            if !matches!(&outcome, Err(e) if e.is_transient()) {
                break;
            }
            self.backoff(attempts, job);
            budget = budget.saturating_mul(2).min(job.cfg.max_cycles.max(1));
            let mut cfg = job.cfg.clone();
            cfg.max_cycles = budget;
            let mut m = job.mem.clone();
            {
                let _s = telemetry::span_with(
                    "service",
                    "service.retry",
                    if telemetry::enabled() {
                        format!("attempt {} (budget {budget})", attempts + 1)
                    } else {
                        String::new()
                    },
                );
                outcome = simulate_compiled(&self.comp, &mut m, &job.args, &cfg);
            }
            mem = m;
            attempts += 1;
            self.stats.retries += 1;
            telemetry::count("service.retries", 1);
        }
        (outcome, mem, attempts)
    }

    /// Sleep the seeded exponential backoff before retry `attempt`
    /// (no-op when `base_backoff_ms` is 0).
    fn backoff(&self, attempt: u32, job: &EvalJob) {
        let base = self.config.retry.base_backoff_ms;
        if base == 0 {
            return;
        }
        let salt = muir_sim::config_hash(&job.cfg) ^ u64::from(attempt);
        let jitter = SplitMix64::salted(self.config.retry.seed, salt).below(base + 1);
        let ms = base.saturating_mul(1 << attempt.min(16)) / 2 + jitter;
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }

    /// Look up a group's memoized result; failures degrade to `None`
    /// with a typed warning.
    fn probe_store(
        &mut self,
        key: Option<ResultKey>,
        warnings: &mut Vec<String>,
    ) -> Option<StoredEval> {
        let key = key?;
        let store = self.store.as_mut()?;
        match store.get_result(key) {
            Ok(hit) => hit,
            Err(e) => {
                warnings.push(e.to_string());
                None
            }
        }
    }

    /// Write a completed evaluation back to the store; failures degrade
    /// to a typed warning.
    fn writeback(
        &mut self,
        key: Option<ResultKey>,
        result: &SimResult,
        mem: &Memory,
        warnings: &mut Vec<String>,
    ) {
        let (Some(key), Some(store)) = (key, self.store.as_mut()) else {
            return;
        };
        let eval = StoredEval {
            result: SimResult {
                cycles: result.cycles,
                results: result.results.clone(),
                stats: result.stats.clone(),
                profile: None,
                trace: None,
            },
            mem: mem.clone(),
        };
        let mut put = store.put_result(key, &eval);
        if let Err(e) = &put {
            // Record the degradation even if the retry below repairs it.
            warnings.push(e.to_string());
            if e.is_transient() {
                // One storage retry: rename/IO hiccups are the transient
                // class the split exists for.
                put = store.put_result(key, &eval);
                if let Err(e2) = &put {
                    warnings.push(e2.to_string());
                }
            }
        }
        if put.is_ok() && !self.artifact_recorded {
            // The artifact record is durability metadata; best-effort,
            // and written at most once per service.
            match store.put_artifact(&self.comp) {
                Ok(_) => self.artifact_recorded = true,
                Err(e) => warnings.push(e.to_string()),
            }
        }
    }
}

/// Exact input equality — the collision guard behind key-based dedup.
/// `SimConfig` holds an `f64` and nested plans without `PartialEq`, so it
/// is compared through its (complete) `Debug` rendering.
fn jobs_identical(a: &EvalJob, b: &EvalJob) -> bool {
    a.args == b.args && a.mem == b.mem && format!("{:?}", a.cfg) == format!("{:?}", b.cfg)
}

/// Store `make()` at every member slot of `g`, marking non-reps
/// coalesced.
fn fill_group(outcomes: &mut [Option<EvalOutcome>], g: &Group, make: impl Fn() -> EvalOutcome) {
    for &m in &g.members {
        let mut o = make();
        o.coalesced = m != g.rep;
        outcomes[m] = Some(o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::gen_case;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_root(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("muir-svc-test-{}-{tag}-{n}", std::process::id()))
    }

    /// A deterministic small case compiled for service tests.
    fn sample(seed: u64) -> (Arc<CompiledAccel>, EvalJob) {
        let case = gen_case(seed, 1);
        let comp = CompiledAccel::compile_cached(&case.build()).unwrap();
        let job = EvalJob {
            cfg: case.cfg.clone(),
            args: vec![],
            mem: case.fresh_memory(),
        };
        (comp, job)
    }

    #[test]
    fn identical_jobs_coalesce_to_one_execution() {
        let (comp, job) = sample(0x11);
        let mut distinct = job.clone();
        distinct.cfg.window = job.cfg.window + 1;
        let mut svc = EvalService::new(comp, None, ServiceConfig::default());
        for _ in 0..3 {
            svc.submit(job.clone());
        }
        svc.submit(distinct);
        let out = svc.drain();
        let s = svc.stats();
        assert_eq!((s.submitted, s.executed_groups, s.coalesced), (4, 2, 2));
        assert!(!out[0].coalesced && out[1].coalesced && out[2].coalesced);
        assert_eq!(out[0].end_state(), out[1].end_state());
        assert_eq!(out[0].end_state(), out[2].end_state());
        assert!(out.iter().all(|o| o.outcome.is_ok()), "all complete");
    }

    #[test]
    fn warm_drain_is_served_entirely_from_store() {
        let root = test_root("warm");
        let (comp, job) = sample(0x22);
        let store = Store::open(&root);
        let mut svc = EvalService::new(comp, Some(store), ServiceConfig::default());
        svc.submit(job.clone());
        let cold = svc.drain();
        assert!(!cold[0].from_store && cold[0].attempts == 1);
        svc.submit(job);
        let warm = svc.drain();
        assert!(warm[0].from_store, "second drain must hit the store");
        assert_eq!(warm[0].attempts, 0, "no simulation work on a hit");
        assert_eq!(cold[0].end_state(), warm[0].end_state(), "bit-identical");
        let ss = svc.store_stats();
        assert_eq!((ss.result_puts, ss.result_hits), (1, 1));
        assert_eq!(svc.stats().store_hits, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn deadline_clip_surfaces_transient_and_retry_recovers() {
        let (comp, job) = sample(0x33);
        // The unconstrained truth, for comparison.
        let mut probe = EvalService::new(comp.clone(), None, ServiceConfig::default());
        probe.submit(job.clone());
        let truth = probe.drain()[0].end_state();

        // An absurdly tight deadline: the first attempt must hit the
        // watchdog; the doubling retry budget recovers within the
        // attempt bound.
        let cfg = ServiceConfig {
            deadline_cycles: 4,
            retry: RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let mut svc = EvalService::new(comp, None, cfg);
        svc.submit(job);
        let out = svc.drain();
        assert!(
            out[0].outcome.is_ok(),
            "retry must recover: {:?}",
            out[0].outcome
        );
        assert_eq!(out[0].end_state(), truth, "recovered run is the true run");
        assert!(out[0].attempts >= 2, "the clipped attempt must have failed");
        let s = svc.stats();
        assert_eq!(s.deadline_clipped, 1);
        assert_eq!(u64::from(out[0].attempts) - 1, s.retries);
    }

    #[test]
    fn disabled_store_degrades_to_recompute_with_typed_warning() {
        let root = test_root("disabled");
        std::fs::create_dir_all(&root).unwrap();
        let file = root.join("occupied");
        std::fs::write(&file, b"x").unwrap();
        let (comp, job) = sample(0x44);
        let store = Store::open(&file.join("sub"));
        assert!(store.is_disabled());
        let mut svc = EvalService::new(comp, Some(store), ServiceConfig::default());
        svc.submit(job);
        let out = svc.drain();
        assert!(out[0].outcome.is_ok(), "degradation never fails the job");
        assert!(!out[0].from_store);
        assert!(
            out[0]
                .store_warnings
                .iter()
                .any(|w| w.contains("E-STORE-DISABLED")),
            "typed warning expected, got {:?}",
            out[0].store_warnings
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The MT-INFER multi-tenant scenario: one sealed artifact, one
    /// service, eight tenants each submitting their own activation
    /// matrix against the shared weights. Every tenant's outcome must be
    /// bit-identical to a standalone run on the same memory, distinct
    /// tenants must not coalesce, a duplicate submission must, and the
    /// answer must not depend on the worker-thread count.
    #[test]
    fn multi_tenant_inference_shares_one_sealed_artifact() {
        use muir_workloads::{tensorgraph, Prng};

        let w = tensorgraph::mt_infer();
        let acc = crate::baseline(&w);
        let comp = CompiledAccel::compile_cached(&acc).unwrap();
        let xobj = w.inits[0].0;

        // Eight tenants: per-tenant activations X, shared banked weights W.
        let mems: Vec<Memory> = (0..8u64)
            .map(|t| {
                let mut mem = w.fresh_memory();
                mem.objects[xobj.0 as usize] = Prng::new(0x3e7a + t)
                    .f32_vec(64)
                    .into_iter()
                    .map(Value::F32)
                    .collect();
                mem
            })
            .collect();
        let job = |mem: &Memory| EvalJob {
            cfg: SimConfig::default(),
            args: vec![],
            mem: mem.clone(),
        };

        let mut svc = EvalService::new(
            comp.clone(),
            None,
            ServiceConfig {
                threads: 4,
                shards: 2,
                ..ServiceConfig::default()
            },
        );
        for mem in &mems {
            svc.submit(job(mem));
        }
        let dup = svc.submit(job(&mems[0])); // tenant 0 resubmits
        let out = svc.drain();
        let s = svc.stats();
        assert_eq!((s.submitted, s.executed_groups, s.coalesced), (9, 8, 1));
        assert!(out[dup].coalesced);
        assert_eq!(out[dup].end_state(), out[0].end_state());
        assert_ne!(
            out[0].end_state(),
            out[1].end_state(),
            "tenants with distinct activations must produce distinct results"
        );

        // Each tenant against its own standalone run on the same artifact.
        for (t, mem) in mems.iter().enumerate() {
            let mut m = mem.clone();
            let r = muir_sim::simulate_compiled(&comp, &mut m, &[], &SimConfig::default()).unwrap();
            let got = out[t].outcome.as_ref().expect("tenant job completes");
            assert_eq!(got.cycles, r.cycles, "tenant {t} cycles");
            assert_eq!(
                out[t].end_state(),
                end_state_hash(&r, &m),
                "tenant {t} end state"
            );
        }

        // Thread-count independence: a single-threaded service over the
        // same submissions reaches the same end states in order.
        let mut svc1 = EvalService::new(comp, None, ServiceConfig::default());
        for mem in &mems {
            svc1.submit(job(mem));
        }
        let out1 = svc1.drain();
        for t in 0..mems.len() {
            assert_eq!(out[t].end_state(), out1[t].end_state(), "tenant {t}");
        }
    }

    #[test]
    fn traced_jobs_bypass_the_store() {
        let root = test_root("traced");
        let (comp, mut job) = sample(0x55);
        job.cfg.trace = muir_sim::TraceConfig::on();
        let store = Store::open(&root);
        let mut svc = EvalService::new(comp, Some(store), ServiceConfig::default());
        svc.submit(job.clone());
        svc.submit(job);
        let out = svc.drain();
        // Not memoizable: no coalescing, no store traffic, trace present.
        assert_eq!(svc.stats().coalesced, 0);
        assert_eq!(svc.store_stats().result_puts, 0);
        assert!(out
            .iter()
            .all(|o| o.outcome.as_ref().unwrap().trace.is_some()));
        let _ = std::fs::remove_dir_all(&root);
    }
}
