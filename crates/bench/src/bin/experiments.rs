//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p muir-bench --bin experiments [all|fig1|table2|fig9|
//!     table3|fig11|fig12|fig15|fig16|fig17|fig18|table4|faults|--selftest|
//!     profile <workload> [outdir]|trace-schema [schema.json]|
//!     bench [--quick] [out.json]|fuzz [--tensor] [--graphs N] [--seed S]|
//!     tensor <file>|--builtin <name>|--gate|
//!     soak <workload> [reps]|
//!     dse [--workload W]...|--all [--seed S] [--budget N] [--threads T]
//!         [--out PATH] [--store DIR]|
//!     serve [store-root]|store-stats [store-root]|store-campaign [root]|
//!     metrics <workload> [outdir]|stats]
//! ```
//!
//! `faults` runs the differential fault-injection campaign (see
//! `muir_bench::campaign`); `--selftest` checks the campaign's determinism
//! and then chains into `scripts/check.sh` when present.
//!
//! `profile <workload>` runs the workload's baseline with the simulator's
//! observability layer on and writes `trace.json` (Chrome/Perfetto) and
//! `trace.vcd` next to a printed utilization/stall/bottleneck report;
//! `trace-schema` regenerates a golden trace and validates it against the
//! checked-in `scripts/trace_schema.json` (the CI exporter gate).
//!
//! `metrics <workload>` runs one instrumented capture through the eval
//! service — cold (dedup + compile + simulate + writeback), traced, warm
//! (store hit), and deadline-clipped (retry) — then writes a merged
//! service+sim Perfetto trace and a schema-validated metrics snapshot
//! (the telemetry CI gate); `stats` prints the unified
//! cache/store/service/sim report from the registry.

use muir_bench::{
    baseline, fig11_point, fig12_sweep, fig15_point, fig16_sweep, fig18_point, fig9_point,
    full_stack, localization_point, optimized, run_verified,
};
use muir_core::stats::graph_stats;
use muir_rtl::circuit::{
    fusion_circuit_delta, lower_to_circuit, sram_circuit_delta, tiling_circuit_delta,
};
use muir_rtl::cost::{estimate, Tech};
use muir_uopt::passes::{ExecutionTiling, MemoryLocalization, OpFusion, TaskFilter};
use muir_uopt::PassManager;
use muir_workloads as workloads;
use muir_workloads::by_name;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which == "--selftest" {
        selftest();
        return;
    }
    if which == "profile" {
        let name = std::env::args().nth(2).unwrap_or_else(|| {
            eprintln!("usage: experiments profile <workload> [outdir]");
            std::process::exit(2);
        });
        let outdir = std::env::args()
            .nth(3)
            .unwrap_or_else(|| format!("target/profile/{}", name.to_lowercase()));
        profile(&name, &outdir);
        return;
    }
    if which == "bench" {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let quick = rest.iter().any(|a| a == "--quick");
        let out = rest
            .iter()
            .find(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_sim.json".to_string());
        bench(quick, &out);
        return;
    }
    if which == "fuzz" {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let arg_after = |flag: &str| {
            rest.iter()
                .position(|a| a == flag)
                .and_then(|p| rest.get(p + 1))
                .map(|v| {
                    let v = v.trim_start_matches("0x");
                    u64::from_str_radix(
                        v,
                        if v.chars().all(|c| c.is_ascii_digit()) {
                            10
                        } else {
                            16
                        },
                    )
                    .unwrap_or_else(|e| panic!("bad {flag} value: {e}"))
                })
        };
        let tensor = rest.iter().any(|a| a == "--tensor");
        let graphs = arg_after("--graphs").unwrap_or(if tensor { 50 } else { 200 });
        let seed = arg_after("--seed").unwrap_or(if tensor { 0x7e50 } else { 0xf022 });
        fuzz(seed, graphs, tensor);
        return;
    }
    if which == "tensor" {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        if rest.iter().any(|a| a == "--gate") {
            tensor_gate();
            return;
        }
        let text = if let Some(p) = rest.iter().position(|a| a == "--builtin") {
            let name = rest.get(p + 1).unwrap_or_else(|| {
                eprintln!("usage: experiments tensor --builtin <attn|convnet|mt_infer>");
                std::process::exit(2);
            });
            workloads::tensorgraph::builtin_graph(name)
                .unwrap_or_else(|| {
                    eprintln!("unknown builtin graph `{name}` (attn, convnet, mt_infer)");
                    std::process::exit(2);
                })
                .to_string()
        } else if let Some(f) = rest.iter().find(|a| !a.starts_with("--")) {
            std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("cannot read `{f}`: {e}");
                std::process::exit(2);
            })
        } else {
            eprintln!("usage: experiments tensor <file> | --builtin <name> | --gate");
            std::process::exit(2);
        };
        tensor_run(&text);
        return;
    }
    if which == "soak" {
        // Profiling aid: run one workload's default-config simulation in a
        // hot loop (deterministic, so the printed cycle total doubles as a
        // quick bit-identity check across engine changes).
        let name = std::env::args().nth(2).unwrap_or_else(|| "GEMM".into());
        let reps: u32 = std::env::args()
            .nth(3)
            .and_then(|s| s.parse().ok())
            .unwrap_or(50);
        let w = by_name(&name).expect("workload");
        let acc = baseline(&w);
        let comp = muir_core::compiled::CompiledAccel::compile_cached(&acc).unwrap();
        let cfg = muir_sim::SimConfig::default();
        let mut total = 0u64;
        for _ in 0..reps {
            let mut mem = w.fresh_memory();
            let r = muir_sim::simulate_compiled(&comp, &mut mem, &[], &cfg).unwrap();
            total += r.cycles;
        }
        println!("soak {name} x{reps}: {total} cycles");
        return;
    }
    if which == "trace-schema" {
        let schema_path = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "scripts/trace_schema.json".to_string());
        trace_schema(&schema_path);
        return;
    }
    if which == "compile-stats" {
        compile_stats();
        return;
    }
    if which == "metrics" {
        let name = std::env::args().nth(2).unwrap_or_else(|| {
            eprintln!("usage: experiments metrics <workload> [outdir]");
            std::process::exit(2);
        });
        let outdir = std::env::args()
            .nth(3)
            .unwrap_or_else(|| format!("target/metrics/{}", name.to_lowercase()));
        metrics(&name, &outdir);
        return;
    }
    if which == "stats" {
        stats_report();
        return;
    }
    if which == "dse" {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let arg_after = |flag: &str| {
            rest.iter()
                .position(|a| a == flag)
                .and_then(|p| rest.get(p + 1))
                .map(|v| {
                    let v = v.trim_start_matches("0x");
                    u64::from_str_radix(
                        v,
                        if v.chars().all(|c| c.is_ascii_digit()) {
                            10
                        } else {
                            16
                        },
                    )
                    .unwrap_or_else(|e| panic!("bad {flag} value: {e}"))
                })
        };
        let str_after = |flag: &str| {
            rest.iter()
                .position(|a| a == flag)
                .and_then(|p| rest.get(p + 1))
                .cloned()
        };
        let mut names: Vec<String> = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            if rest[i] == "--workload" {
                if let Some(n) = rest.get(i + 1) {
                    names.push(n.clone());
                }
                i += 1;
            }
            i += 1;
        }
        if rest.iter().any(|a| a == "--all") {
            names = workloads::all()
                .iter()
                .map(|w| w.name.to_string())
                .collect();
        }
        if names.is_empty() {
            eprintln!(
                "usage: experiments dse [--workload W]... | --all [--seed S] \
                 [--budget N] [--threads T] [--out PATH] [--store DIR]"
            );
            std::process::exit(2);
        }
        let params = muir_bench::dse::DseParams {
            seed: arg_after("--seed").unwrap_or(0xd5e),
            budget: arg_after("--budget").unwrap_or(24),
            threads: arg_after("--threads").unwrap_or(1) as usize,
        };
        let out = str_after("--out").unwrap_or_else(|| "DSE_report.json".to_string());
        dse(&names, &params, str_after("--store").as_deref(), &out);
        return;
    }
    if which == "serve" {
        let root = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "target/store-serve".to_string());
        serve(&root);
        return;
    }
    if which == "store-stats" {
        let root = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "target/store-serve".to_string());
        store_stats(&root);
        return;
    }
    if which == "store-campaign" {
        let root = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "target/store-campaign".to_string());
        store_campaign(&root);
        return;
    }
    let all = which == "all";
    if all || which == "table2" {
        table2();
    }
    if all || which == "fig9" {
        fig9();
    }
    if all || which == "fig11" {
        fig11();
    }
    if all || which == "fig12" {
        fig12();
    }
    if all || which == "fig15" {
        fig15();
    }
    if all || which == "fig16" {
        fig16();
    }
    if all || which == "fig17" {
        fig17();
    }
    if all || which == "fig18" {
        fig18();
    }
    if all || which == "table4" {
        table4();
    }
    if all || which == "fig1" || which == "table3" {
        fig1_table3();
    }
    if which == "ablations" {
        ablations();
    }
    if all || which == "faults" {
        faults();
    }
}

/// Per-workload sealing report plus the artifact-determinism gate:
/// compile every workload twice (identical hash, identical artifact
/// tables), run a no-op pass pipeline (hash unchanged), and report
/// lowering time, artifact size, micro-op stream footprint, and the
/// process-wide compile-cache hit rate. `scripts/check.sh` runs this as
/// a hard gate.
fn compile_stats() {
    use muir_core::compiled::{cache_stats, CompiledAccel};
    hdr("Compile stats: sealed-artifact lowering time / size / determinism");
    println!(
        "{:>10} | {:>12} {:>10} {:>9} {:>6} {:>9} | determinism",
        "Bench", "hash", "lower_us", "size_KiB", "uops", "uop_KiB"
    );
    for w in workloads::all() {
        let mut acc = baseline(&w);
        let t0 = std::time::Instant::now();
        let first = CompiledAccel::compile(&acc).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let lower_us = t0.elapsed().as_secs_f64() * 1e6;
        // Gate 1: compile twice -> identical content hash.
        let second = CompiledAccel::compile(&acc).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            first.content_hash(),
            second.content_hash(),
            "{}: recompile changed the content hash",
            w.name
        );
        // Gate 2: a no-op pass pipeline leaves the hash unchanged.
        PassManager::new()
            .run(&mut acc)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            first.content_hash(),
            muir_core::content_hash(&acc),
            "{}: empty pipeline changed the content hash",
            w.name
        );
        // Cached compiles of the same content must share one artifact.
        let a = CompiledAccel::compile_cached(&acc).unwrap();
        let b = CompiledAccel::compile_cached(&acc).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "{}: cache returned distinct artifacts for identical content",
            w.name
        );
        // The micro-op stream footprint: what the flat-dispatch engine
        // actually walks per cycle, summed over every task in the artifact.
        let uops: usize = first.tasks().iter().map(|t| t.uop_count()).sum();
        let uop_bytes: usize = first.tasks().iter().map(|t| t.uop_bytes()).sum();
        println!(
            "{:>10} | {:012x} {:>10.1} {:>9.1} {:>6} {:>9.1} | ok",
            w.name,
            first.content_hash() & 0xffff_ffff_ffff,
            lower_us,
            first.size_bytes() as f64 / 1024.0,
            uops,
            uop_bytes as f64 / 1024.0
        );
    }
    let cs = cache_stats();
    println!(
        "\ncompile cache: {} hits / {} misses ({:.0}% hit rate), \
         {} entries resident / {} capacity, {} evicted",
        cs.hits,
        cs.misses,
        cs.hit_rate() * 100.0,
        cs.entries,
        cs.capacity,
        cs.evictions
    );
    println!("determinism gates: OK (2x compile + no-op pipeline on all workloads)");
}

/// `dse [--workload W]...|--all [--seed S] [--budget N] [--threads T]
/// [--out PATH] [--store DIR]`: the seeded design-space-exploration
/// driver (ROADMAP item 3). Samples `budget` μopt configurations per
/// workload, evaluates them through the eval service (optionally backed
/// by the persistent store at `DIR`), and writes the schema-validated
/// `DSE_report.json` with a cycles-vs-area Pareto front per workload.
/// Exits non-zero on any schema or front-semantics violation. Same seed
/// and budget produce a byte-identical report at any `--threads` value
/// and any store temperature.
fn dse(names: &[String], params: &muir_bench::dse::DseParams, store: Option<&str>, out: &str) {
    use muir_bench::dse::{explore, report_json, validate_dse_json, DseStats};

    hdr(&format!(
        "Design-space exploration: seed {:#x}, budget {} / {} configs, {} thread(s){}",
        params.seed,
        params.budget,
        muir_uopt::config::PassSpace::full().size(),
        params.threads,
        store.map(|s| format!(", store {s}")).unwrap_or_default()
    ));
    muir_core::telemetry::set_enabled(true);
    muir_core::telemetry::reset();
    let store_root = store.map(std::path::Path::new);
    let mut results = Vec::new();
    let mut totals = DseStats::default();
    println!(
        "{:>10} | {:>5} {:>5} {:>5} {:>5} | {:>5} | best (cycles, area)",
        "Bench", "cand", "arts", "hits", "sim", "front"
    );
    for name in names {
        let w = by_name(name).unwrap_or_else(|| panic!("unknown workload `{name}`"));
        let (front, stats) = explore(&w, params, store_root);
        let best = front.front.first().copied().unwrap_or((0, 0));
        println!(
            "{:>10} | {:>5} {:>5} {:>5} {:>5} | {:>5} | ({}, {})",
            front.name,
            stats.candidates,
            stats.artifacts,
            stats.store_hits,
            stats.recomputed,
            front.front.len(),
            best.0,
            best.1
        );
        totals.candidates += stats.candidates;
        totals.artifacts += stats.artifacts;
        totals.store_hits += stats.store_hits;
        totals.coalesced += stats.coalesced;
        totals.recomputed += stats.recomputed;
        totals.store_warnings += stats.store_warnings;
        results.push(front);
    }
    let report = report_json(params, &results);
    std::fs::write(out, &report).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "\ntotals: {} candidates -> {} artifacts, {} store hits / {} simulated, \
         {} coalesced, {} store warnings",
        totals.candidates,
        totals.artifacts,
        totals.store_hits,
        totals.recomputed,
        totals.coalesced,
        totals.store_warnings
    );
    muir_core::telemetry::set_enabled(false);
    match std::fs::read_to_string("scripts/dse_schema.json") {
        Ok(schema) => match validate_dse_json(&report, &schema) {
            Ok(s) => println!(
                "report: {} workloads, {} candidates, {} front points \
                 ({} non-trivial fronts) -> {out} [schema OK]",
                s.workloads, s.candidates, s.front_points, s.nontrivial_fronts
            ),
            Err(e) => {
                eprintln!("FAIL: report violates scripts/dse_schema.json: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("report -> {out} (scripts/dse_schema.json not found; validation skipped)")
        }
    }
}

/// `serve [store-root]`: the persistent-store determinism gate. Every
/// workload is evaluated through a fresh [`muir_bench::service::EvalService`]
/// three ways over the same on-disk store — cold (populate), warm (every
/// job must be a store hit with zero simulation work), and post-fault (a
/// seeded read-side bit flip: the corruption must surface typed, the job
/// recompute, and the repaired slot serve warm again). Any end-state
/// divergence or missed hit exits non-zero.
fn serve(root: &str) {
    use muir_bench::service::{EvalJob, EvalService, ServiceConfig};
    use muir_core::compiled::CompiledAccel;
    use muir_store::{Store, StoreFaultClass, StoreFaultPlan};

    hdr("Eval service: cold / warm / post-fault determinism over the workload suite");
    muir_core::telemetry::set_enabled(true);
    muir_core::telemetry::reset();
    let root = std::path::Path::new(root);
    let _ = std::fs::remove_dir_all(root);
    let open = || Store::open(root);

    let mut jobs = 0u64;
    let mut warm_hits = 0u64;
    let mut fault_codes = 0u64;
    let mut fail = false;
    let mut cold_ms = 0.0f64;
    let mut warm_ms = 0.0f64;
    println!(
        "{:>10} | {:>9} {:>9} {:>9} | warm  post-fault",
        "Bench", "cycles", "cold_ms", "warm_ms"
    );
    for w in workloads::all() {
        let acc = baseline(&w);
        let comp =
            CompiledAccel::compile_cached(&acc).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let job = EvalJob {
            cfg: muir_sim::SimConfig::default(),
            args: vec![],
            mem: w.fresh_memory(),
        };
        jobs += 1;

        // Cold: populate the store.
        let mut svc = EvalService::new(comp.clone(), Some(open()), ServiceConfig::default());
        svc.submit(job.clone());
        let t0 = std::time::Instant::now();
        let cold = &svc.drain()[0];
        let c_ms = t0.elapsed().as_secs_f64() * 1e3;
        cold_ms += c_ms;
        let truth = cold.end_state();
        let cycles = cold.outcome.as_ref().map(|r| r.cycles).unwrap_or(0);

        // Warm: a fresh service over the same store must not simulate.
        let mut svc = EvalService::new(comp.clone(), Some(open()), ServiceConfig::default());
        svc.submit(job.clone());
        let t0 = std::time::Instant::now();
        let warm = &svc.drain()[0];
        let w_ms = t0.elapsed().as_secs_f64() * 1e3;
        warm_ms += w_ms;
        let warm_ok = warm.from_store && warm.attempts == 0 && warm.end_state() == truth;
        warm_hits += u64::from(warm.from_store);

        // Post-fault: a seeded read-side bit flip. The entry is detected
        // corrupt (typed), quarantined, recomputed bit-identically, and
        // re-published.
        let plan = StoreFaultPlan::single(StoreFaultClass::BitFlipRead, 0x5e2e ^ jobs);
        let mut svc = EvalService::new(
            comp.clone(),
            Some(Store::open_with_faults(root, plan)),
            ServiceConfig::default(),
        );
        svc.submit(job.clone());
        let post = &svc.drain()[0];
        let typed = post.store_warnings.iter().any(|m| m.contains("E-STORE-"));
        fault_codes += u64::from(typed);
        let post_ok = !post.from_store && typed && post.end_state() == truth;

        // Re-warm: the slot repaired by the post-fault recompute serves.
        let mut svc = EvalService::new(comp, Some(open()), ServiceConfig::default());
        svc.submit(job);
        let rewarm = &svc.drain()[0];
        let rewarm_ok = rewarm.from_store && rewarm.end_state() == truth;

        let ok = warm_ok && post_ok && rewarm_ok;
        fail |= !ok;
        println!(
            "{:>10} | {:>9} {:>9.2} {:>9.2} | {:>4}  {}",
            w.name,
            cycles,
            c_ms,
            w_ms,
            if warm_ok { "hit" } else { "MISS" },
            if post_ok && rewarm_ok {
                "detected+recovered"
            } else {
                "FAILED"
            }
        );
    }
    println!(
        "\n{jobs} jobs: warm hits {warm_hits}/{jobs}, post-fault typed errors {fault_codes}/{jobs}, \
         cold {cold_ms:.1} ms -> warm {warm_ms:.1} ms ({:.1}x)",
        cold_ms / warm_ms.max(1e-9)
    );
    store_stats(&root.display().to_string());
    {
        use muir_core::telemetry;
        telemetry::set_enabled(false);
        let snap = telemetry::snapshot();
        hdr("Registry metrics (service / store / compile, whole run)");
        for c in snap
            .counters
            .iter()
            .filter(|c| !c.0.starts_with("sim.") && !c.0.starts_with("stats."))
        {
            println!("  {:<28} {}", c.0, c.1);
        }
    }
    if fail || warm_hits != jobs || fault_codes != jobs {
        eprintln!("FAIL: store determinism gate (see rows above)");
        std::process::exit(1);
    }
    println!("store determinism gate: OK (cold == warm == post-fault on every workload)");
}

/// `store-stats [store-root]`: on-disk inventory of a persistent store.
fn store_stats(root: &str) {
    hdr(&format!("Store inventory: {root}"));
    let root = std::path::Path::new(root);
    if !root.exists() {
        println!("(no store at this root)");
        return;
    }
    let count = |sub: &str| -> (u64, u64) {
        std::fs::read_dir(root.join(sub))
            .map(|d| {
                d.flatten()
                    .filter_map(|e| e.metadata().ok().map(|m| m.len()))
                    .fold((0, 0), |(n, b), len| (n + 1, b + len))
            })
            .unwrap_or((0, 0))
    };
    for sub in ["objects", "results", "quarantine", "tmp"] {
        let (n, bytes) = count(sub);
        println!(
            "{sub:>11}: {n:>4} entries, {:>8.1} KiB",
            bytes as f64 / 1024.0
        );
    }
    let snap = muir_core::telemetry::snapshot();
    let io: Vec<_> = snap
        .counters
        .iter()
        .filter(|c| c.0.starts_with("store."))
        .collect();
    if !io.is_empty() {
        println!("live store counters (this process):");
        for c in io {
            println!("  {:<28} {}", c.0, c.1);
        }
    }
}

/// `metrics <workload> [outdir]`: one instrumented end-to-end capture
/// through the eval service. Writes `trace.json` (merged service+sim
/// Perfetto timeline) and `metrics.json` (registry snapshot), validates
/// both against the checked-in schemas (exits non-zero on violation),
/// prints the unified report and Prometheus exposition, and measures the
/// telemetry-disabled vs -enabled drain overhead.
fn metrics(name: &str, outdir: &str) {
    use muir_bench::service::{EvalJob, EvalService, RetryPolicy, ServiceConfig};
    use muir_bench::telemetry_gate as gate;
    use muir_core::compiled::{cache_stats, CompiledAccel};
    use muir_core::telemetry;
    use muir_store::Store;

    let Some(w) = by_name(name) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(2);
    };
    hdr(&format!(
        "Telemetry capture: {} through the eval service",
        w.name
    ));
    let outroot = std::path::Path::new(outdir);
    let _ = std::fs::remove_dir_all(outroot);
    std::fs::create_dir_all(outroot).unwrap_or_else(|e| panic!("create {outdir}: {e}"));

    let acc = baseline(&w);
    let plain = || EvalJob {
        cfg: muir_sim::SimConfig::default(),
        args: vec![],
        mem: w.fresh_memory(),
    };

    telemetry::set_enabled(true);
    telemetry::reset();

    // Cold drain: dedup (two identical jobs), a traced job for the merged
    // export, first-touch compile, sharded simulation, store writeback.
    let comp = CompiledAccel::compile_cached(&acc).unwrap_or_else(|e| panic!("{name}: {e}"));
    let store_root = outroot.join("store");
    let mut svc = EvalService::new(
        comp.clone(),
        Some(Store::open(&store_root)),
        ServiceConfig::default(),
    );
    svc.submit(plain());
    svc.submit(plain());
    let mut traced = plain();
    traced.cfg.trace = muir_sim::TraceConfig::on();
    let ti = svc.submit(traced);
    let cold = svc.drain();
    assert!(
        cold.iter().all(|o| o.outcome.is_ok()),
        "{name}: cold drain failed"
    );
    let trace = cold[ti].outcome.as_ref().expect("checked ok").trace.clone();

    // Warm drain: a fresh service over the same store serves from disk.
    let mut warm_svc = EvalService::new(
        comp.clone(),
        Some(Store::open(&store_root)),
        ServiceConfig::default(),
    );
    warm_svc.submit(plain());
    let warm = warm_svc.drain();
    assert!(warm[0].from_store, "{name}: warm drain must hit the store");

    // Deadline-clipped service: the tight budget forces a transient
    // `E-SIM-LIMIT` and the doubling retry recovers — retry spans.
    let tight = ServiceConfig {
        deadline_cycles: 4,
        retry: RetryPolicy {
            max_attempts: 32,
            ..RetryPolicy::default()
        },
        ..ServiceConfig::default()
    };
    let mut clip_svc = EvalService::new(comp, None, tight);
    clip_svc.submit(plain());
    let clipped = clip_svc.drain();
    assert!(clipped[0].outcome.is_ok(), "{name}: retry must recover");

    // Merged Perfetto export: service spans above the sim's event tracks.
    let spans = telemetry::spans();
    let merged = gate::merged_chrome_json(&spans, trace.as_ref());
    let trace_path = outroot.join("trace.json");
    std::fs::write(&trace_path, &merged).unwrap_or_else(|e| panic!("write trace.json: {e}"));
    match std::fs::read_to_string("scripts/trace_schema.json") {
        Ok(schema) => match muir_bench::profile::validate_trace_json(&merged, &schema) {
            Ok(s) => println!(
                "merged trace: {} events ({} service spans) -> {} [schema OK]",
                s.events,
                spans.len(),
                trace_path.display()
            ),
            Err(e) => {
                eprintln!("FAIL: merged trace violates scripts/trace_schema.json: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => println!(
            "merged trace -> {} (scripts/trace_schema.json not found; validation skipped)",
            trace_path.display()
        ),
    }
    for s in &spans {
        println!(
            "  span [{}] {:<20} depth {} +{:>7}us {:>7}us  {}",
            s.cat, s.name, s.depth, s.start_us, s.dur_us, s.detail
        );
    }

    // Snapshot: mirror the authoritative structs into `stats.*` gauges,
    // write the JSON exposition, and gate it on the schema.
    gate::mirror_stats(
        &cache_stats(),
        Some(&warm_svc.store_stats()),
        Some(&svc.stats()),
    );
    let snap = telemetry::snapshot();
    let json = snap.to_json();
    let metrics_path = outroot.join("metrics.json");
    std::fs::write(&metrics_path, &json).unwrap_or_else(|e| panic!("write metrics.json: {e}"));
    match std::fs::read_to_string("scripts/metrics_schema.json") {
        Ok(schema) => match gate::validate_metrics_json(&json, &schema) {
            Ok(s) => println!(
                "metrics snapshot: {} counters, {} gauges, {} histograms -> {} [schema OK]",
                s.counters,
                s.gauges,
                s.histograms,
                metrics_path.display()
            ),
            Err(e) => {
                eprintln!("FAIL: metrics snapshot violates scripts/metrics_schema.json: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => println!(
            "metrics snapshot -> {} (scripts/metrics_schema.json not found; validation skipped)",
            metrics_path.display()
        ),
    }

    hdr("Unified stats (from the registry)");
    print!("{}", gate::render_unified(&snap));

    hdr("Prometheus exposition");
    print!("{}", snap.to_prometheus());

    // Overhead: the wall-clock side of the zero-perturbation contract
    // (the bit-identity side is pinned by the determinism guard test).
    hdr("Telemetry overhead (cold drain, fresh store, mean of 3)");
    let run_cold = |tag: &str| -> f64 {
        let comp = CompiledAccel::compile_cached(&acc).expect("compiles");
        let dir = outroot.join(format!("store-{tag}"));
        let mut svc = EvalService::new(comp, Some(Store::open(&dir)), ServiceConfig::default());
        svc.submit(plain());
        let t0 = std::time::Instant::now();
        let out = svc.drain();
        assert!(out[0].outcome.is_ok());
        t0.elapsed().as_secs_f64() * 1e3
    };
    telemetry::set_enabled(false);
    let off_ms: f64 = (0..3).map(|i| run_cold(&format!("off{i}"))).sum::<f64>() / 3.0;
    telemetry::set_enabled(true);
    let on_ms: f64 = (0..3).map(|i| run_cold(&format!("on{i}"))).sum::<f64>() / 3.0;
    telemetry::set_enabled(false);
    println!(
        "disabled {off_ms:.2} ms / enabled {on_ms:.2} ms per cold drain ({:+.1}%)",
        100.0 * (on_ms - off_ms) / off_ms.max(1e-9)
    );
}

/// `stats`: the unified cache/store/service/sim report — one printer
/// reading the telemetry registry, fed by the authoritative stats
/// structs after a short instrumented workload run.
fn stats_report() {
    use muir_bench::service::{EvalJob, EvalService, ServiceConfig};
    use muir_bench::telemetry_gate as gate;
    use muir_core::compiled::{cache_stats, CompiledAccel};
    use muir_core::telemetry;
    use muir_store::Store;

    hdr("Unified stats: GEMM through the eval service");
    telemetry::set_enabled(true);
    telemetry::reset();
    let root = std::path::Path::new("target/stats-store");
    let _ = std::fs::remove_dir_all(root);

    let w = by_name("GEMM").expect("GEMM in suite");
    let acc = baseline(&w);
    // A second artifact plus a repeat compile for cache hit/miss traffic.
    let spmv = baseline(&by_name("SPMV").expect("SPMV in suite"));
    let _ = CompiledAccel::compile_cached(&spmv).expect("compiles");
    let comp = CompiledAccel::compile_cached(&acc).expect("compiles");
    let _ = CompiledAccel::compile_cached(&acc).expect("compiles");

    let job = EvalJob {
        cfg: muir_sim::SimConfig::default(),
        args: vec![],
        mem: w.fresh_memory(),
    };
    let mut svc = EvalService::new(comp, Some(Store::open(root)), ServiceConfig::default());
    svc.submit(job.clone());
    svc.submit(job.clone());
    svc.drain(); // cold: dedup + simulate + writeback
    svc.submit(job);
    svc.drain(); // warm: served from the store
    gate::mirror_stats(&cache_stats(), Some(&svc.store_stats()), Some(&svc.stats()));
    telemetry::set_enabled(false);
    print!("{}", gate::render_unified(&telemetry::snapshot()));
}

/// `store-campaign [root]`: the storage fault-injection campaign (see
/// `muir_bench::store_campaign`). Exits non-zero unless every injected
/// fault class surfaced typed and every end state matched the fault-free
/// cold run.
fn store_campaign(root: &str) {
    hdr("Storage fault campaign: injected faults vs fault-free cold truth");
    let root = std::path::Path::new(root);
    let _ = std::fs::remove_dir_all(root);
    let report = muir_bench::store_campaign::run_store_campaign(root);
    print!("{report}");
    if !report.all_pass() {
        eprintln!("FAIL: storage fault campaign");
        std::process::exit(1);
    }
}

/// Differential fault campaign: 3 workloads × 6 fault classes × 3 seeded
/// replicas, each cross-checked against the reference interpreter.
fn faults() {
    hdr("Fault campaign: seeded single-event injection vs muir-mir reference");
    let report = muir_bench::campaign::default_campaign();
    print!("{report}");
}

/// Robustness self-test: the campaign must be byte-for-byte reproducible
/// and must never let a corrupted completion go unflagged. Chains into
/// `scripts/check.sh` (fmt/clippy/tier-1) when the script is present.
fn selftest() {
    hdr("Selftest: fault-campaign determinism");
    let wl = ["SAXPY", "GEMM"];
    let classes = [
        muir_sim::FaultClass::TokenDrop,
        muir_sim::FaultClass::TokenBitFlip,
        muir_sim::FaultClass::MemEcc,
        muir_sim::FaultClass::DramTimeout,
    ];
    let a = muir_bench::campaign::run_campaign(&wl, &classes, 2);
    let b = muir_bench::campaign::run_campaign(&wl, &classes, 2);
    assert_eq!(a, b, "campaign is not deterministic");
    assert_eq!(a.unflagged_corruptions(), 0, "unflagged silent corruption");
    print!("{a}");
    println!(
        "determinism: OK ({} cases reproduced exactly)",
        a.cases.len()
    );

    let script = std::path::Path::new("scripts/check.sh");
    if script.exists() {
        hdr("Selftest: scripts/check.sh");
        let status = std::process::Command::new("sh")
            .arg(script)
            .status()
            .expect("failed to launch scripts/check.sh");
        assert!(status.success(), "scripts/check.sh failed: {status}");
    } else {
        println!(
            "(scripts/check.sh not found from {:?}; skipped)",
            std::env::current_dir().ok()
        );
    }
    println!("selftest: OK");
}

fn hdr(title: &str) {
    println!("\n=== {title} ===");
}

/// `profile <workload> [outdir]`: trace the baseline accelerator, write the
/// Chrome/Perfetto + VCD artifacts, and print the bottleneck report.
fn profile(name: &str, outdir: &str) {
    let art = muir_bench::profile::profile_workload(name);
    hdr(&format!("Profile: {} (baseline accelerator)", art.workload));
    println!(
        "cycles: {} untraced / {} traced (perturbation: {})",
        art.cycles_untraced,
        art.cycles_traced,
        art.cycles_traced as i64 - art.cycles_untraced as i64
    );
    print!("{}", art.profile.render());
    print!("{}", art.report);
    hdr("μopt dry-run: what acting on the suggestions buys");
    print!("{}", art.pass_table);
    let speedup = art.cycles_untraced as f64 / art.cycles_optimized as f64;
    println!(
        "full stack: {} -> {} cycles ({speedup:.2}x)",
        art.cycles_untraced, art.cycles_optimized
    );

    hdr("Scheduler cost: Dense scan vs Ready set (untraced baseline)");
    let w = by_name(name).expect("workload exists: profile_workload ran it");
    let row = muir_bench::sched::bench_workload(&w, 3);
    println!(
        "wall-time: {:.3} ms dense / {:.3} ms ready ({:.2}x); \
         try_fire visits per cycle: {:.1} dense / {:.2} ready",
        row.dense_ms,
        row.ready_ms,
        row.speedup(),
        row.dense_visits_per_cycle,
        row.ready_visits_per_cycle
    );

    let dir = std::path::Path::new(outdir);
    std::fs::create_dir_all(dir).expect("create profile output directory");
    let json_path = dir.join("trace.json");
    let vcd_path = dir.join("trace.vcd");
    std::fs::write(&json_path, art.trace.to_chrome_json()).expect("write trace.json");
    std::fs::write(&vcd_path, art.trace.to_vcd()).expect("write trace.vcd");
    println!(
        "\nwrote {} and {} ({} events recorded, {} dropped)",
        json_path.display(),
        vcd_path.display(),
        art.profile.events_recorded,
        art.profile.events_dropped
    );
    println!("open trace.json in ui.perfetto.dev or chrome://tracing; trace.vcd in gtkwave");
}

/// `bench [--quick] [out.json]`: the scheduler benchmark gate. First run
/// the four-way differential suite (plain, traced, and seeded fault-plan
/// modes; every scheduler x exec mode vs the Dense+Interp oracle —
/// Parallel@2 in quick mode, the full 1/2/4/8 thread sweep otherwise)
/// over the selected workload set, then time every scheduler, measure `simulate_batch`
/// multi-run throughput scaling, and write `BENCH_sim.json`,
/// schema-validated by the same dependency-free JSON parser the trace
/// gate uses. Exits non-zero on any divergence, schema violation, or if
/// Ready is slower than Dense in aggregate.
fn bench(quick: bool, out: &str) {
    use muir_bench::sched;
    hdr(&format!(
        "Scheduler benchmark: Dense vs Ready vs Parallel ({} set)",
        if quick { "quick" } else { "full" }
    ));
    let ws: Vec<workloads::Workload> = if quick {
        sched::QUICK_SET
            .iter()
            .map(|n| by_name(n).expect("quick-set workload"))
            .collect()
    } else {
        workloads::all()
    };
    for (i, w) in ws.iter().enumerate() {
        let r = if quick {
            sched::check_workload(w, i)
        } else {
            sched::check_workload_full(w, i)
        };
        if let Err(e) = r {
            eprintln!("scheduler divergence: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "differential: {} workloads x {{plain, traced, faulted}} x {{interp, uop}} x {{dense, ready, parallel@{}}} bit-identical",
        ws.len(),
        if quick { "2".to_string() } else { "1/2/4/8".to_string() }
    );

    let reps = if quick { 2 } else { 3 };
    let rows: Vec<sched::BenchRow> = ws.iter().map(|w| sched::bench_workload(w, reps)).collect();
    print!("{}", sched::render_rows(&rows));

    hdr("Batch throughput: simulate_batch over the quick set");
    let batch = sched::bench_batch(4, if quick { 1 } else { 2 });
    print!("{}", sched::render_batch(&batch));

    hdr("Sealing cost: one compile per batch (amortized across N runs)");
    let compile = sched::measure_compile();
    print!("{}", sched::render_compile(&compile));

    hdr("Store cold/warm: persistent result store over the quick set");
    let store = sched::bench_store();
    print!("{}", sched::render_store(&store));

    let json = sched::bench_json(&rows, &batch, &compile, &store);
    if let Err(e) = sched::validate_bench_json(&json) {
        eprintln!("BENCH_sim.json schema violation: {e}");
        std::process::exit(1);
    }
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("cannot write `{out}`: {e}"));
    println!("wrote {out}");

    let g = sched::geomean_speedup(&rows);
    if g < 1.0 {
        eprintln!("FAIL: Ready scheduler is slower than Dense (geomean {g:.2}x < 1.00x)");
        std::process::exit(1);
    }
}

/// `fuzz [--tensor] [--graphs N] [--seed S]`: the seeded fuzzer gates.
/// Without `--tensor`, every generated μIR graph is run under Dense,
/// Ready, and Parallel at 1/2/4/8 planning threads in plain, traced, and
/// seeded-fault modes; any divergence (or disagreement with the reference
/// interpreter) fails with a shrunk `(seed, size)` reproduction line.
/// With `--tensor`, seeded tensor-op graphs are lowered through the
/// frontend and checked the same way (graph eval vs mir interp vs every
/// scheduler x exec mode).
fn fuzz(seed: u64, graphs: u64, tensor: bool) {
    if tensor {
        hdr(&format!(
            "Tensor-graph fuzz: {graphs} seeded graphs (seed 0x{seed:x}) through parse -> lower -> seal -> sim"
        ));
        match muir_bench::testgen::run_tensor_seeds(seed, graphs) {
            Ok(()) => println!("fuzz: {graphs} tensor graphs bit-identical across schedulers"),
            Err(e) => {
                eprintln!("fuzz failure: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    hdr(&format!(
        "Scheduler fuzz: {graphs} seeded graphs (seed 0x{seed:x}) x 3 schedulers x 3 modes"
    ));
    match muir_bench::testgen::run_seeds(seed, graphs) {
        Ok(()) => println!("fuzz: {graphs} graphs bit-identical across schedulers"),
        Err(e) => {
            eprintln!("fuzz failure: {e}");
            std::process::exit(1);
        }
    }
}

/// `tensor <file>|--builtin <name>`: the tensor front door. Parse a
/// tensor-op graph, lower it through the frontend into a verified
/// accelerator, seal and simulate it, and check the result against both
/// independent references — the graph-level evaluator and the mir
/// interpreter on the lowered module.
fn tensor_run(text: &str) {
    use muir_frontend::tensor::{TensorGraph, TensorLowerConfig};

    let g = match TensorGraph::parse(text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    hdr(&format!(
        "Tensor graph: {} (content hash {:016x})",
        g.name,
        g.content_hash()
    ));
    for i in &g.inputs {
        println!("  input  {:<8} {}", i.name, i.dims);
    }
    for n in &g.nodes {
        println!(
            "  node   %{:<7} {:<8} -> {}",
            n.name,
            n.op.mnemonic(),
            n.dims
        );
    }
    let low = match g.lower(&TensorLowerConfig::default()) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "lowered: {} memory objects, {} relu(s) fused into producers",
        low.inputs.len() + 1,
        low.fused_relus
    );

    let w = match workloads::tensorgraph::from_text("TENSOR", text, 0x7e50) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let acc = baseline(&w);
    let r = run_verified(&w, &acc); // sim vs mir reference interpreter
    let inputs: Vec<Vec<f32>> = w
        .inits
        .iter()
        .map(|(_, d)| match d {
            workloads::InitData::F32(v) => v.clone(),
            workloads::InitData::I64(_) => unreachable!("tensor graphs are f32"),
        })
        .collect();
    let want = g.eval(&inputs).expect("graph eval");
    let got = w.run_reference().expect("reference").read_f32(w.outputs[0]);
    assert_eq!(want.len(), got.len(), "output length mismatch");
    for (k, (x, y)) in want.iter().zip(&got).enumerate() {
        let scale = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() <= 1e-4 * scale,
            "graph eval vs lowered module diverge at element {k}: {x} vs {y}"
        );
    }
    println!(
        "verified: sim == mir reference == graph evaluator ({} output elements)",
        got.len()
    );
    println!("cycles: {} (default config, sealed artifact)", r.cycles);
}

/// `tensor --gate`: the `scripts/check.sh` tensor-lowering differential
/// gate, over GEMM- and CONV-shaped graphs on the hand-built workloads'
/// own inputs:
///
/// 1. **Bit-identity** — the text-parsed graph and the API-built graph
///    must agree exactly: content hash, lowered-module text, simulated
///    cycles, and end-state hash (output bits).
/// 2. **Numerics** — the frontend-lowered accelerator must reproduce the
///    hand-built GEMM/CONV workloads' reference results (1e-4 relative;
///    the two lowerings order their f32 reductions differently).
fn tensor_gate() {
    use muir_frontend::tensor::{
        Dims, GraphInput, GraphNode, GraphOp, GraphRef, TensorGraph, TensorLowerConfig,
    };
    use muir_workloads::{InitData, Prng};

    hdr("Tensor-lowering gate: frontend-lowered vs hand-built GEMM / CONV");

    let gate_one =
        |tag: &str, text: &str, api: &TensorGraph, inits: Vec<Vec<f32>>, want: &[f32]| {
            let parsed = TensorGraph::parse(text).unwrap_or_else(|e| panic!("{tag}: {e}"));
            assert_eq!(
                parsed.content_hash(),
                api.content_hash(),
                "{tag}: parse-built and API-built graphs hash differently"
            );
            let cfg = TensorLowerConfig::default();
            let run = |g: &TensorGraph| {
                let low = g.lower(&cfg).unwrap_or_else(|e| panic!("{tag}: {e}"));
                let module_text = muir_mir::printer::print_module(&low.module);
                let w = workloads::Workload {
                    name: "TENSOR-GATE",
                    class: workloads::Class::TensorGraph,
                    fp: true,
                    tensor: true,
                    inits: low
                        .inputs
                        .iter()
                        .zip(&inits)
                        .map(|(o, v)| (*o, InitData::F32(v.clone())))
                        .collect(),
                    outputs: vec![low.output],
                    module: low.module,
                };
                let acc = baseline(&w);
                let mut mem = w.fresh_memory();
                let r = muir_sim::simulate(&acc, &mut mem, &[], &muir_sim::SimConfig::default())
                    .unwrap_or_else(|e| panic!("{tag}: {e}"));
                let out = mem.read_f32(w.outputs[0]);
                let mut h = muir_core::ContentHasher::new();
                for v in &out {
                    h.push(&v.to_bits().to_le_bytes());
                }
                (module_text, r.cycles, h.finish(), out)
            };
            let (mt_p, cy_p, hash_p, out) = run(&parsed);
            let (mt_a, cy_a, hash_a, _) = run(api);
            assert_eq!(mt_p, mt_a, "{tag}: lowered modules differ (parse vs API)");
            assert_eq!(cy_p, cy_a, "{tag}: cycles differ (parse vs API)");
            assert_eq!(
                hash_p, hash_a,
                "{tag}: end-state hashes differ (parse vs API)"
            );
            assert_eq!(out.len(), want.len(), "{tag}: output length");
            for (k, (x, y)) in out.iter().zip(want).enumerate() {
                let scale = x.abs().max(y.abs()).max(1.0);
                assert!(
                    (x - y).abs() <= 1e-4 * scale,
                    "{tag}: element {k} diverges from the hand-built reference: {x} vs {y}"
                );
            }
            println!(
                "{tag:>8}: {} cycles, end-state {hash_p:016x} — parse == API bit-identical, \
             numerics match hand-built reference ({} elements)",
                cy_p,
                out.len()
            );
        };

    // GEMM: 32x32 matmul on the hand-built GEMM workload's inputs (seed 11).
    let gemm_text = "graph gemm32\n\
                     input a : f32[32,32]\n\
                     input b : f32[32,32]\n\
                     %c = matmul a, b\n\
                     output %c\n";
    let gemm_api = TensorGraph::build(
        "gemm32",
        vec![
            GraphInput {
                name: "a".into(),
                dims: Dims::new(32, 32),
            },
            GraphInput {
                name: "b".into(),
                dims: Dims::new(32, 32),
            },
        ],
        vec![GraphNode {
            name: "c".into(),
            op: GraphOp::MatMul,
            args: vec![GraphRef::Input(0), GraphRef::Input(1)],
            dims: Dims::new(1, 1),
        }],
        0,
    )
    .expect("API GEMM graph builds");
    let mut rng = Prng::new(11);
    let ia = rng.f32_vec(32 * 32);
    let ib = rng.f32_vec(32 * 32);
    let gemm_want = workloads::polybench::gemm_reference(&ia, &ib, 32);
    gate_one("GEMM", gemm_text, &gemm_api, vec![ia, ib], &gemm_want);

    // CONV: 28x28 (x) 3x3 valid conv on the hand-built CONV inputs (seed 47).
    let conv_text = "graph conv28\n\
                     input img : f32[28,28]\n\
                     input k : f32[3,3]\n\
                     %c = conv img, k\n\
                     output %c\n";
    let conv_api = TensorGraph::build(
        "conv28",
        vec![
            GraphInput {
                name: "img".into(),
                dims: Dims::new(28, 28),
            },
            GraphInput {
                name: "k".into(),
                dims: Dims::new(3, 3),
            },
        ],
        vec![GraphNode {
            name: "c".into(),
            op: GraphOp::Conv,
            args: vec![GraphRef::Input(0), GraphRef::Input(1)],
            dims: Dims::new(1, 1),
        }],
        0,
    )
    .expect("API CONV graph builds");
    let mut rng = Prng::new(47);
    let iin = rng.f32_vec(28 * 28);
    let ik = rng.f32_vec(9);
    let conv_want = workloads::tensorflow::conv_reference(&iin, &ik, 28, 26);
    gate_one("CONV", conv_text, &conv_api, vec![iin, ik], &conv_want);

    println!("tensor-lowering gate: OK");
}

/// `trace-schema [schema.json]`: CI gate — regenerate a golden trace and
/// validate the exporter's output shape against the checked-in schema.
fn trace_schema(schema_path: &str) {
    hdr("Trace-schema validation (golden trace vs checked-in schema)");
    let schema = std::fs::read_to_string(schema_path)
        .unwrap_or_else(|e| panic!("cannot read schema `{schema_path}`: {e}"));
    let trace = muir_bench::profile::golden_trace_json();
    match muir_bench::profile::validate_trace_json(&trace, &schema) {
        Ok(s) => println!(
            "OK: {} events ({} metadata, {} complete, {} counter) conform to {schema_path}",
            s.events, s.meta_events, s.complete_events, s.counter_events
        ),
        Err(e) => {
            eprintln!("trace schema violation: {e}");
            std::process::exit(1);
        }
    }
}

/// Table 2: baseline synthesis quality on FPGA and ASIC.
fn table2() {
    hdr("Table 2: Synthesizing baseline muIR (FPGA Arria-10-class / ASIC 28nm-class)");
    println!(
        "{:>10} | {:>5} {:>6} {:>7} {:>7} {:>4} | {:>7} {:>6} {:>5}",
        "Bench", "MHz", "mW", "ALMs", "Regs", "DSP", "mm2", "mW", "GHz"
    );
    for w in workloads::all() {
        let acc = baseline(&w);
        let comp = muir_bench::sealed(&w, &acc);
        let f = estimate(&comp, Tech::FpgaArria10);
        let a = estimate(&comp, Tech::Asic28);
        println!(
            "{:>10} | {:>5.0} {:>6.0} {:>7} {:>7} {:>4} | {:>7.2} {:>6.0} {:>5.2}",
            w.name,
            f.fmax_mhz,
            f.power_mw,
            f.alms,
            f.regs,
            f.dsps,
            a.area_mm2,
            a.power_mw,
            a.fmax_mhz / 1000.0
        );
    }
}

/// Figure 9: baseline μIR vs HLS (normalized execution, HLS = 1).
fn fig9() {
    hdr("Figure 9: muIR vs HLS normalized execution time (HLS = 1; < 1 means muIR wins)");
    let names = [
        "GEMM", "COVAR", "FFT", "SPMV", "2MM", "3MM", "CONV", "DENSE8", "DENSE16", "SOFTM8",
        "SOFTM16",
    ];
    for name in names {
        let w = by_name(name).unwrap();
        let (uir, hls) = fig9_point(&w);
        println!(
            "{:>10}: {:.3}   (uir {:.1} us, hls {:.1} us)",
            name,
            uir / hls,
            uir,
            hls
        );
    }
}

/// Figure 11: op-fusion speedups.
fn fig11() {
    hdr("Figure 11: execution-time reduction from op-fusion (baseline = 1)");
    for name in ["FFT", "SPMV", "COVAR", "SAXPY", "RGB2YUV"] {
        let w = by_name(name).unwrap();
        let (base, opt) = fig11_point(&w);
        println!(
            "{:>10}: {:.3}   ({} -> {} cycles, {:.2}x)",
            name,
            opt as f64 / base as f64,
            base,
            opt,
            base as f64 / opt as f64
        );
    }
}

/// Figure 12: execution tiling sweep on the Cilk benchmarks.
fn fig12() {
    hdr("Figure 12: normalized execution vs execution tiles (1T = 1)");
    println!(
        "{:>10}: {:>6} {:>6} {:>6} {:>6}",
        "Bench", "1T", "2T", "4T", "8T"
    );
    for name in ["STENCIL", "SAXPY", "IMG-SCALE", "FIB", "M-SORT"] {
        let w = by_name(name).unwrap();
        let sweep = fig12_sweep(&w);
        let c1 = sweep[0].1 as f64;
        print!("{name:>10}:");
        for (_, c) in &sweep {
            print!(" {:>6.3}", *c as f64 / c1);
        }
        let best = sweep.iter().map(|(_, c)| *c).min().unwrap();
        println!("   (max speedup {:.2}x)", c1 / best as f64);
    }
}

/// Figure 15: tensor higher-order ops vs scalar pipelines.
fn fig15() {
    hdr("Figure 15: tensor ops vs scalar baseline (baseline = 1)");
    for pair in muir_workloads::inhouse::tensor_pairs() {
        let (tensor, scalar) = fig15_point(&pair);
        println!(
            "{:>10}: {:.3}   (scalar {} -> tensor {} cycles, {:.2}x)",
            pair.0.name,
            tensor as f64 / scalar as f64,
            scalar,
            tensor,
            scalar as f64 / tensor as f64
        );
    }
    println!("  -- lane-lowering ablation (same graph, scalar lanes) --");
    for name in ["RELU[T]", "2MM[T]", "CONV[T]"] {
        let w = by_name(name).unwrap();
        let (native, lowered) = muir_bench::fig15_lowering_ablation(&w);
        println!(
            "{:>10}: tensor {} vs lane-lowered {} cycles ({:.2}x)",
            name,
            native,
            lowered,
            lowered as f64 / native as f64
        );
    }
}

/// Figure 16: cache banking sweep.
fn fig16() {
    hdr("Figure 16: normalized execution vs cache banks (1B = 1)");
    println!("{:>10}: {:>6} {:>6} {:>6}", "Bench", "1B", "2B", "4B");
    for name in ["GEMM", "FFT", "2MM", "3MM", "SAXPY", "CONV"] {
        let w = by_name(name).unwrap();
        let sweep = fig16_sweep(&w);
        let c1 = sweep[0].1 as f64;
        print!("{name:>10}:");
        for (_, c) in &sweep {
            print!(" {:>6.3}", *c as f64 / c1);
        }
        println!();
    }
}

/// Figure 17: stacked optimizations.
fn fig17() {
    hdr("Figure 17: stacked muopt passes, normalized execution (baseline = 1)");
    let names = [
        "SAXPY",
        "STENCIL",
        "IMG-SCALE",
        "GEMM",
        "COVAR",
        "FFT",
        "SPMV",
        "2MM",
        "3MM",
        "CONV",
        "DENSE8",
        "DENSE16",
        "SOFTM8",
        "SOFTM16",
    ];
    for name in names {
        let w = by_name(name).unwrap();
        let acc = baseline(&w);
        let base = run_verified(&w, &acc).cycles;
        let (opt_acc, _) = optimized(&w, &full_stack(w.class));
        let opt = run_verified(&w, &opt_acc).cycles;
        println!(
            "{:>10}: {:.3}   ({} -> {} cycles, {:.2}x)",
            name,
            opt as f64 / base as f64,
            base,
            opt,
            base as f64 / opt as f64
        );
    }
}

/// Figure 18: optimized μIR accelerators vs an ARM-A9-class CPU at 1 GHz.
fn fig18() {
    hdr("Figure 18: speedup over ARM-A9-class CPU (CPU = 1; > 1 means muIR wins)");
    let names = [
        "GEMM",
        "COVAR",
        "FFT",
        "SPMV",
        "2MM",
        "3MM",
        "IMG-SCALE",
        "RELU",
        "2MM[T]",
        "CONV[T]",
    ];
    for name in names {
        let w = by_name(name).unwrap();
        let (acc_us, cpu_us) = fig18_point(&w);
        println!(
            "{:>10}: {:>6.2}x   (accel {:.1} us vs cpu {:.1} us)",
            name,
            cpu_us / acc_us,
            acc_us,
            cpu_us
        );
    }
}

/// Table 4: conciseness of μIR vs FIRRTL for three transformations.
fn table4() {
    hdr("Table 4: muIR vs FIRRTL-level deltas (nodes/edges touched)");
    println!(
        "{:>10} | {:>16} | {:>16} | {:>16} | {:>6}",
        "Bench", "tile 1->2 (u|F)", "add SRAM (u|F)", "fusion (u|F)", "size x"
    );
    for name in ["SAXPY", "STENCIL", "IMG-SCALE"] {
        let w = by_name(name).unwrap();
        let acc = baseline(&w);

        // muIR deltas from the actual passes.
        let mut t_acc = acc.clone();
        let tile_rep = PassManager::new()
            .with(ExecutionTiling {
                tiles: 2,
                filter: TaskFilter::Spawned,
            })
            .run(&mut t_acc)
            .unwrap();
        let tile_u = tile_rep.total();

        let mut l_acc = acc.clone();
        let sram_rep = PassManager::new()
            .with(MemoryLocalization::default())
            .run(&mut l_acc)
            .unwrap();
        // Per-SRAM cost: divide by the number of scratchpads created.
        let srams_added = l_acc
            .structures
            .len()
            .saturating_sub(acc.structures.len())
            .max(1);
        let sram_u = (
            sram_rep.total().nodes.div_ceil(srams_added),
            sram_rep.total().edges.div_ceil(srams_added),
        );

        let mut f_acc = acc.clone();
        let fuse_rep = PassManager::new()
            .with(OpFusion::default())
            .run(&mut f_acc)
            .unwrap();
        let fuse_u = fuse_rep.total();

        // FIRRTL-level equivalents.
        let spawned = acc
            .task_ids()
            .find(|&t| {
                acc.tasks.iter().any(|task| {
                    task.dataflow.nodes.iter().any(|n| {
                        matches!(n.kind,
                            muir_core::node::NodeKind::TaskCall { callee, spawn: true, .. }
                            if callee == t)
                    })
                })
            })
            .unwrap_or(acc.root);
        let tile_f = tiling_circuit_delta(&acc, spawned);
        let obj = acc
            .structures
            .iter()
            .flat_map(|s| s.objects.iter())
            .next()
            .copied();
        let sram_f = sram_circuit_delta(&acc, obj.unwrap_or(muir_mir::instr::MemObjId(0)));
        let fuse_f = fusion_circuit_delta(&f_acc);

        let ratio = lower_to_circuit(&acc).total_elements() as f64
            / graph_stats(&acc).total_elements() as f64;
        println!(
            "{:>10} | {:>3}/{:<3} {:>4}/{:<4} | {:>3}/{:<3} {:>4}/{:<4} | {:>3}/{:<3} {:>4}/{:<4} | {:>5.1}x",
            name,
            tile_u.nodes,
            tile_u.edges,
            tile_f.0,
            tile_f.1,
            sram_u.0,
            sram_u.1,
            sram_f.0,
            sram_f.1,
            fuse_u.nodes,
            fuse_u.edges,
            fuse_f.0,
            fuse_f.1,
            ratio
        );
    }
}

/// Figure 1's headline plot + Table 3's summary.
fn fig1_table3() {
    hdr("Figure 1 / Table 3: headline per-pass improvements");
    // Op fusion: best of the fusion set.
    let fuse_best = ["FFT", "SPMV", "COVAR", "SAXPY", "RGB2YUV"]
        .iter()
        .map(|n| {
            let w = by_name(n).unwrap();
            let (b, o) = fig11_point(&w);
            b as f64 / o as f64
        })
        .fold(0.0f64, f64::max);
    println!("Op fusion        (paper 1.4x): {fuse_best:.2}x");

    let tile_best = ["STENCIL", "IMG-SCALE", "FIB", "M-SORT"]
        .iter()
        .map(|n| {
            let w = by_name(n).unwrap();
            let sweep = fig12_sweep(&w);
            sweep[0].1 as f64 / sweep.iter().map(|(_, c)| *c).min().unwrap() as f64
        })
        .fold(0.0f64, f64::max);
    println!("Task tiling      (paper 6.0x): {tile_best:.2}x");

    let tensor_best = muir_workloads::inhouse::tensor_pairs()
        .iter()
        .map(|pair| {
            let (tensor, scalar) = fig15_point(pair);
            scalar as f64 / tensor as f64
        })
        .fold(0.0f64, f64::max);
    println!("Tensor intrinsic (paper 8.5x): {tensor_best:.2}x");

    let local_best = ["SPMV", "CONV", "SAXPY", "COVAR"]
        .iter()
        .map(|n| {
            let w = by_name(n).unwrap();
            let (b, o) = localization_point(&w);
            b as f64 / o as f64
        })
        .fold(0.0f64, f64::max);
    println!("Locality         (paper 1.5x): {local_best:.2}x");
}

/// Ablations beyond the paper (DESIGN.md §6).
fn ablations() {
    hdr("Ablation: <||> queue depth (Pass 1), Cilk benchmarks");
    println!("(finding: flat — the baseline's elastic pipelined connections already");
    println!(" provide the decoupling Pass 1 adds explicitly; spawns complete at");
    println!(" enqueue, so parents rarely block on child queues at these rates)");
    for name in ["SAXPY", "M-SORT"] {
        let w = by_name(name).unwrap();
        let sweep = muir_bench::ablation_queue_depth(&w, &[1, 2, 4, 8, 16]);
        print!("{name:>10}:");
        for (d, c) in sweep {
            print!("  q{d}={c}");
        }
        println!();
    }
    hdr("Ablation: fusion clock-period budget (cycles @ fmax)");
    for name in ["RGB2YUV", "COVAR"] {
        let w = by_name(name).unwrap();
        print!("{name:>10}:");
        for (p, c, f) in muir_bench::ablation_fusion_period(&w, &[1.5, 2.5, 4.0, 8.0]) {
            print!("  {p}ns:{c}cy@{f:.0}MHz");
        }
        println!();
    }
    hdr("Ablation: scratchpad banking after localization");
    for name in ["FFT", "STENCIL", "RELU[T]"] {
        let w = by_name(name).unwrap();
        print!("{name:>10}:");
        for (b, c) in muir_bench::ablation_spad_banking(&w, &[1, 2, 4, 8]) {
            print!("  {b}B={c}");
        }
        println!();
    }
    hdr("Ablation: databox entries x elastic channel depth");
    for name in ["SPMV", "CONV"] {
        let w = by_name(name).unwrap();
        print!("{name:>10}:");
        for (d, e, c) in
            muir_bench::ablation_sim_buffers(&w, &[(1, 1), (2, 2), (4, 4), (8, 8), (16, 16)])
        {
            print!("  d{d}e{e}={c}");
        }
        println!();
    }
}
