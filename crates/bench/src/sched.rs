//! Dense-vs-Ready scheduler harness: the differential oracle and the
//! wall-time benchmark behind `experiments bench` / `BENCH_sim.json`.
//!
//! The cycle engine has two phase-4 schedulers (`SchedulerKind`): the
//! original dense scanner and the event-driven ready-set scheduler
//! (DESIGN.md §9). Their contract is *bit-identical observable
//! behaviour* — cycles, results, `SimStats` (minus the simulator-effort
//! counter `sched_visits`), trace streams, and even typed errors. This
//! module checks that contract over real workloads (including seeded
//! fault plans and tracing) and measures what the ready scheduler buys
//! in simulator wall-time.

use crate::baseline;
use crate::profile::{parse_json, Json};
use muir_sim::{simulate, FaultClass, FaultPlan, SchedulerKind, SimConfig, SimStats, TraceConfig};
use muir_workloads::{all, by_name, Workload};
use std::time::Instant;

/// The observable outcome of one simulation, flattened to comparable
/// strings so differential checks are order- and representation-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Completed: (cycles, Debug-formatted results, stats fingerprint,
    /// Chrome-JSON trace when tracing was on).
    Ok {
        /// Cycles to completion.
        cycles: u64,
        /// `Debug` rendering of the root results (exact, bit-level).
        results: String,
        /// All `SimStats` fields except `sched_visits`.
        stats: String,
        /// Full Chrome-JSON event stream (`None` when tracing was off).
        trace: Option<String>,
    },
    /// Failed: the error's `Display` rendering (typed errors carry cycle
    /// numbers and sites, so equal strings mean equal failures).
    Err(String),
}

/// Every `SimStats` field except `sched_visits`, which measures simulator
/// effort, not hardware behaviour, and legitimately differs between
/// schedulers.
pub fn stats_fingerprint(s: &SimStats) -> String {
    format!(
        "cycles={} fires={} inv={:?} busy={:?} structs={:?} dram_fills={} faults={:?}",
        s.cycles,
        s.fires,
        s.task_invocations,
        s.task_busy_cycles,
        s.struct_stats,
        s.dram_fills,
        s.faults
    )
}

/// Run `w`'s baseline accelerator under one scheduler and flatten the
/// outcome. `faults`/`tracing` select the stress mode.
pub fn run_under(
    w: &Workload,
    scheduler: SchedulerKind,
    faults: &FaultPlan,
    tracing: bool,
) -> RunOutcome {
    let acc = baseline(w);
    let cfg = SimConfig {
        faults: faults.clone(),
        trace: if tracing {
            TraceConfig::on()
        } else {
            TraceConfig::default()
        },
        scheduler,
        ..SimConfig::default()
    };
    let mut mem = w.fresh_memory();
    match simulate(&acc, &mut mem, &[], &cfg) {
        Ok(r) => RunOutcome::Ok {
            cycles: r.cycles,
            results: format!("{:?}", r.results),
            stats: stats_fingerprint(&r.stats),
            trace: r.trace.map(|t| t.to_chrome_json()),
        },
        Err(e) => RunOutcome::Err(e.to_string()),
    }
}

/// Differentially run `w` under Dense and Ready; returns an error message
/// naming the first divergence, if any.
///
/// # Errors
/// Any observable difference: cycles, results, stats, trace stream, or
/// error text.
pub fn check_equivalence(w: &Workload, faults: &FaultPlan, tracing: bool) -> Result<(), String> {
    let dense = run_under(w, SchedulerKind::Dense, faults, tracing);
    let ready = run_under(w, SchedulerKind::Ready, faults, tracing);
    if dense == ready {
        return Ok(());
    }
    // Render a focused diff rather than two page-long Debug dumps.
    let describe = |o: &RunOutcome| match o {
        RunOutcome::Ok { cycles, .. } => format!("Ok(cycles={cycles})"),
        RunOutcome::Err(e) => format!("Err({e})"),
    };
    let field = match (&dense, &ready) {
        (
            RunOutcome::Ok {
                cycles: c1,
                results: r1,
                stats: s1,
                trace: t1,
            },
            RunOutcome::Ok {
                cycles: c2,
                results: r2,
                stats: s2,
                trace: t2,
            },
        ) => {
            if c1 != c2 {
                format!("cycles: dense={c1} ready={c2}")
            } else if r1 != r2 {
                "results differ".to_string()
            } else if s1 != s2 {
                format!("stats: dense[{s1}] ready[{s2}]")
            } else if t1 != t2 {
                "trace streams differ".to_string()
            } else {
                "unknown field".to_string()
            }
        }
        _ => format!("dense={} ready={}", describe(&dense), describe(&ready)),
    };
    let fault_mode = if faults.specs.is_empty() { "off" } else { "on" };
    Err(format!(
        "{} (faults={fault_mode}, tracing={tracing}): {field}",
        w.name
    ))
}

/// The seeded fault plan a differential sweep pairs with workload `i`:
/// a single-event plan whose class cycles through [`FaultClass::ALL`]
/// and whose seed hashes the workload name, so every run of the suite
/// replays the same faults while the suite as a whole covers every class
/// (including the deadlock-shaped ones, which must deadlock at the same
/// cycle under both schedulers).
pub fn diff_fault_plan(w: &Workload, i: usize) -> FaultPlan {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in w.name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    FaultPlan::single(FaultClass::ALL[i % FaultClass::ALL.len()], h)
}

/// Differentially check one workload in all three stress modes: plain,
/// tracing on, and a seeded single-event fault plan.
///
/// # Errors
/// The first divergence found (see [`check_equivalence`]).
pub fn check_workload(w: &Workload, i: usize) -> Result<(), String> {
    check_equivalence(w, &FaultPlan::none(), false)?;
    check_equivalence(w, &FaultPlan::none(), true)?;
    check_equivalence(w, &diff_fault_plan(w, i), false)
}

/// One row of `BENCH_sim.json`: wall-time under both schedulers for the
/// same workload, with the differential invariant re-asserted.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Workload name.
    pub workload: String,
    /// Simulated cycles (identical under both schedulers by contract).
    pub cycles: u64,
    /// Best-of-N wall-time under the dense scanner, milliseconds.
    pub dense_ms: f64,
    /// Best-of-N wall-time under the ready scheduler, milliseconds.
    pub ready_ms: f64,
    /// `try_fire` visits per simulated cycle, dense.
    pub dense_visits_per_cycle: f64,
    /// `try_fire` visits per simulated cycle, ready.
    pub ready_visits_per_cycle: f64,
}

impl BenchRow {
    /// Dense-over-ready wall-time ratio (> 1 means Ready is faster).
    pub fn speedup(&self) -> f64 {
        if self.ready_ms > 0.0 {
            self.dense_ms / self.ready_ms
        } else {
            f64::INFINITY
        }
    }

    /// Simulated cycles per wall-clock second under Ready.
    pub fn ready_cycles_per_sec(&self) -> f64 {
        if self.ready_ms > 0.0 {
            self.cycles as f64 / (self.ready_ms / 1e3)
        } else {
            f64::INFINITY
        }
    }
}

/// Time `w` under one scheduler: best of `reps` runs (min filters
/// scheduler-independent noise), returning (ms, cycles, visits).
/// Sub-~25 ms workloads get extra reps — a single timer-tick or cache
/// hiccup on a 3 ms run otherwise swings the ratio by several percent.
fn time_under(w: &Workload, scheduler: SchedulerKind, reps: u32) -> (f64, u64, u64) {
    let acc = baseline(w);
    let cfg = SimConfig::default().with_scheduler(scheduler);
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    let mut visits = 0;
    let mut run = |best: &mut f64| {
        let mut mem = w.fresh_memory();
        let t0 = Instant::now();
        let r = simulate(&acc, &mut mem, &[], &cfg)
            .unwrap_or_else(|e| panic!("{} ({scheduler:?}): {e}", w.name));
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        *best = best.min(dt);
        cycles = r.cycles;
        visits = r.stats.sched_visits;
    };
    for _ in 0..reps.max(1) {
        run(&mut best);
    }
    if best < 25.0 && best * f64::from(reps) < 100.0 {
        let extra = (100.0 / best.max(0.1)).min(32.0) as u32;
        for _ in 0..extra {
            run(&mut best);
        }
    }
    (best, cycles, visits)
}

/// Benchmark one workload under both schedulers (best of `reps`),
/// asserting the cycle counts agree.
///
/// # Panics
/// Panics if either run fails or the schedulers disagree on cycles.
pub fn bench_workload(w: &Workload, reps: u32) -> BenchRow {
    let (dense_ms, dense_cycles, dense_visits) = time_under(w, SchedulerKind::Dense, reps);
    let (ready_ms, ready_cycles, ready_visits) = time_under(w, SchedulerKind::Ready, reps);
    assert_eq!(
        dense_cycles, ready_cycles,
        "{}: schedulers disagree on cycle count",
        w.name
    );
    let per = |v: u64| v as f64 / dense_cycles.max(1) as f64;
    BenchRow {
        workload: w.name.to_string(),
        cycles: dense_cycles,
        dense_ms,
        ready_ms,
        dense_visits_per_cycle: per(dense_visits),
        ready_visits_per_cycle: per(ready_visits),
    }
}

/// The quick subset used by the CI gate (small enough for a checked
/// build, varied enough to cover compute-, memory-, and spawn-bound
/// shapes).
pub const QUICK_SET: [&str; 6] = ["GEMM", "FFT", "SPMV", "SAXPY", "STENCIL", "M-SORT"];

/// Benchmark the quick set or every workload; `reps` best-of runs each.
pub fn bench_all(quick: bool, reps: u32) -> Vec<BenchRow> {
    let ws: Vec<Workload> = if quick {
        QUICK_SET.iter().map(|n| by_name(n).unwrap()).collect()
    } else {
        all()
    };
    ws.iter().map(|w| bench_workload(w, reps)).collect()
}

/// Geometric-mean speedup over the rows.
pub fn geomean_speedup(rows: &[BenchRow]) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let s: f64 = rows.iter().map(|r| r.speedup().max(1e-9).ln()).sum();
    (s / rows.len() as f64).exp()
}

/// Serialize rows to the `BENCH_sim.json` document.
pub fn bench_json(rows: &[BenchRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"sim-scheduler\",\n  \"unit\": \"ms\",\n");
    out.push_str(&format!(
        "  \"geomean_speedup\": {:.4},\n  \"rows\": [\n",
        geomean_speedup(rows)
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"cycles\": {}, \"dense_ms\": {:.4}, \
             \"ready_ms\": {:.4}, \"speedup\": {:.4}, \"ready_cycles_per_sec\": {:.1}, \
             \"dense_visits_per_cycle\": {:.2}, \"ready_visits_per_cycle\": {:.2}}}{}\n",
            r.workload,
            r.cycles,
            r.dense_ms,
            r.ready_ms,
            r.speedup(),
            r.ready_cycles_per_sec(),
            r.dense_visits_per_cycle,
            r.ready_visits_per_cycle,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validate a `BENCH_sim.json` document with the crate's dependency-free
/// JSON parser: shape, required fields, and numeric sanity.
///
/// # Errors
/// A message naming the first schema violation.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    if doc.get("bench").and_then(Json::as_str) != Some("sim-scheduler") {
        return Err("missing or wrong `bench` tag".into());
    }
    if doc.get("unit").and_then(Json::as_str) != Some("ms") {
        return Err("missing or wrong `unit`".into());
    }
    let Some(Json::Num(g)) = doc.get("geomean_speedup") else {
        return Err("missing numeric `geomean_speedup`".into());
    };
    if !g.is_finite() || *g <= 0.0 {
        return Err(format!("implausible geomean_speedup {g}"));
    }
    let Some(Json::Arr(rows)) = doc.get("rows") else {
        return Err("missing `rows` array".into());
    };
    if rows.is_empty() {
        return Err("`rows` is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        for key in [
            "cycles",
            "dense_ms",
            "ready_ms",
            "speedup",
            "ready_cycles_per_sec",
            "dense_visits_per_cycle",
            "ready_visits_per_cycle",
        ] {
            match row.get(key) {
                Some(Json::Num(v)) if v.is_finite() && *v >= 0.0 => {}
                other => {
                    return Err(format!(
                        "row {i}: `{key}` must be a non-negative number, got {}",
                        other.map_or("nothing", Json::type_name)
                    ))
                }
            }
        }
        if row.get("workload").and_then(Json::as_str).is_none() {
            return Err(format!("row {i}: missing `workload` string"));
        }
    }
    Ok(())
}

/// Render the benchmark table for the terminal.
pub fn render_rows(rows: &[BenchRow]) -> String {
    let mut out = format!(
        "{:>10} {:>12} {:>10} {:>10} {:>8} {:>12} {:>9} {:>9}\n",
        "Bench", "cycles", "dense ms", "ready ms", "speedup", "Mcyc/s", "visits/c", "(ready)"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>12} {:>10.3} {:>10.3} {:>7.2}x {:>12.2} {:>9.1} {:>9.2}\n",
            r.workload,
            r.cycles,
            r.dense_ms,
            r.ready_ms,
            r.speedup(),
            r.ready_cycles_per_sec() / 1e6,
            r.dense_visits_per_cycle,
            r.ready_visits_per_cycle,
        ));
    }
    out.push_str(&format!(
        "{:>10} geomean speedup: {:.2}x\n",
        "--", // aligns under the workload column
        geomean_speedup(rows)
    ));
    out
}
