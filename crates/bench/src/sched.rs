//! Scheduler differential harness: the oracle and the wall-time benchmark
//! behind `experiments bench` / `BENCH_sim.json`.
//!
//! The cycle engine has three phase-4 schedulers (`SchedulerKind`): the
//! original dense scanner, the event-driven ready-set scheduler
//! (DESIGN.md §9), and the tile-parallel plan/commit scheduler
//! (DESIGN.md §10) — each runnable under two firing interpreters
//! (`ExecMode`, DESIGN.md §14): the `NodeKind` interpreter and the
//! compiled micro-op stream. Their contract is *bit-identical observable
//! behaviour* — cycles, results, `SimStats` (minus the simulator-effort
//! counter `sched_visits`), trace streams, and even typed errors — at any
//! thread count. This module checks that contract over real workloads
//! (including seeded fault plans and tracing), measures what each
//! scheduler buys in simulator wall-time, and measures multi-run
//! throughput scaling through `muir_sim::simulate_batch`.

use crate::baseline;
use crate::profile::{parse_json, Json};
use muir_core::compiled::CompiledAccel;
use muir_sim::{
    simulate, ExecMode, FaultClass, FaultPlan, SchedulerKind, SimConfig, SimStats, TraceConfig,
};
use muir_workloads::{all, by_name, Workload};
use std::time::Instant;

/// The observable outcome of one simulation, flattened to comparable
/// strings so differential checks are order- and representation-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Completed: (cycles, Debug-formatted results, stats fingerprint,
    /// Chrome-JSON trace when tracing was on).
    Ok {
        /// Cycles to completion.
        cycles: u64,
        /// `Debug` rendering of the root results (exact, bit-level).
        results: String,
        /// All `SimStats` fields except `sched_visits`.
        stats: String,
        /// Full Chrome-JSON event stream (`None` when tracing was off).
        trace: Option<String>,
    },
    /// Failed: the error's `Display` rendering (typed errors carry cycle
    /// numbers and sites, so equal strings mean equal failures).
    Err(String),
}

/// Every `SimStats` field except `sched_visits`, which measures simulator
/// effort, not hardware behaviour, and legitimately differs between
/// schedulers.
pub fn stats_fingerprint(s: &SimStats) -> String {
    format!(
        "cycles={} fires={} inv={:?} busy={:?} structs={:?} dram_fills={} faults={:?}",
        s.cycles,
        s.fires,
        s.task_invocations,
        s.task_busy_cycles,
        s.struct_stats,
        s.dram_fills,
        s.faults
    )
}

/// Run `w`'s baseline accelerator under one scheduler and flatten the
/// outcome. `faults`/`tracing` select the stress mode.
pub fn run_under(
    w: &Workload,
    scheduler: SchedulerKind,
    faults: &FaultPlan,
    tracing: bool,
) -> RunOutcome {
    run_under_with(w, scheduler, 1, faults, tracing)
}

/// [`run_under`] with an explicit planning thread count (meaningful only
/// under [`SchedulerKind::Parallel`]).
pub fn run_under_with(
    w: &Workload,
    scheduler: SchedulerKind,
    threads: u32,
    faults: &FaultPlan,
    tracing: bool,
) -> RunOutcome {
    run_under_exec(w, scheduler, threads, faults, tracing, ExecMode::default())
}

/// [`run_under_with`] with an explicit firing interpreter (`Interp` walks
/// `NodeKind`, `MicroOp` dispatches the compiled micro-op stream).
pub fn run_under_exec(
    w: &Workload,
    scheduler: SchedulerKind,
    threads: u32,
    faults: &FaultPlan,
    tracing: bool,
    exec: ExecMode,
) -> RunOutcome {
    let acc = baseline(w);
    let cfg = SimConfig {
        faults: faults.clone(),
        trace: if tracing {
            TraceConfig::on()
        } else {
            TraceConfig::default()
        },
        scheduler,
        exec,
        ..SimConfig::default()
    }
    .with_threads(threads);
    let mut mem = w.fresh_memory();
    match simulate(&acc, &mut mem, &[], &cfg) {
        Ok(r) => RunOutcome::Ok {
            cycles: r.cycles,
            results: format!("{:?}", r.results),
            stats: stats_fingerprint(&r.stats),
            trace: r.trace.map(|t| t.to_chrome_json()),
        },
        Err(e) => RunOutcome::Err(e.to_string()),
    }
}

/// Differentially run `w` under Dense and Ready; returns an error message
/// naming the first divergence, if any.
///
/// # Errors
/// Any observable difference: cycles, results, stats, trace stream, or
/// error text.
pub fn check_equivalence(w: &Workload, faults: &FaultPlan, tracing: bool) -> Result<(), String> {
    let dense = run_under(w, SchedulerKind::Dense, faults, tracing);
    let ready = run_under(w, SchedulerKind::Ready, faults, tracing);
    diff_outcomes(w, &dense, "ready", &ready, faults, tracing)
}

/// Compare `other` against the dense oracle; `Err` renders a focused diff
/// naming the first divergent field and the failing configuration.
fn diff_outcomes(
    w: &Workload,
    dense: &RunOutcome,
    label: &str,
    other: &RunOutcome,
    faults: &FaultPlan,
    tracing: bool,
) -> Result<(), String> {
    if dense == other {
        return Ok(());
    }
    // Render a focused diff rather than two page-long Debug dumps.
    let describe = |o: &RunOutcome| match o {
        RunOutcome::Ok { cycles, .. } => format!("Ok(cycles={cycles})"),
        RunOutcome::Err(e) => format!("Err({e})"),
    };
    let field = match (dense, other) {
        (
            RunOutcome::Ok {
                cycles: c1,
                results: r1,
                stats: s1,
                trace: t1,
            },
            RunOutcome::Ok {
                cycles: c2,
                results: r2,
                stats: s2,
                trace: t2,
            },
        ) => {
            if c1 != c2 {
                format!("cycles: dense={c1} {label}={c2}")
            } else if r1 != r2 {
                "results differ".to_string()
            } else if s1 != s2 {
                format!("stats: dense[{s1}] {label}[{s2}]")
            } else if t1 != t2 {
                "trace streams differ".to_string()
            } else {
                "unknown field".to_string()
            }
        }
        _ => format!("dense={} {label}={}", describe(dense), describe(other)),
    };
    let fault_mode = if faults.specs.is_empty() { "off" } else { "on" };
    Err(format!(
        "{} (faults={fault_mode}, tracing={tracing}, vs {label}): {field}",
        w.name
    ))
}

/// The seeded fault plan a differential sweep pairs with workload `i`:
/// a single-event plan whose class cycles through [`FaultClass::ALL`]
/// and whose seed hashes the workload name, so every run of the suite
/// replays the same faults while the suite as a whole covers every class
/// (including the deadlock-shaped ones, which must deadlock at the same
/// cycle under both schedulers).
pub fn diff_fault_plan(w: &Workload, i: usize) -> FaultPlan {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in w.name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    FaultPlan::single(FaultClass::ALL[i % FaultClass::ALL.len()], h)
}

/// Differentially check one workload against the dense interpreter oracle
/// in all three stress modes (plain, tracing on, seeded single-event fault
/// plan), across the full scheduler × exec-mode grid: Dense under the
/// micro-op engine, Ready under both firing interpreters, Parallel under
/// the micro-op engine at each of `threads` (which exercises epoch commit
/// whenever `t > 1` and faults are off), and Parallel under the node-kind
/// interpreter at 2 threads.
///
/// # Errors
/// The first divergence found, naming the failing configuration.
pub fn check_workload_threads(w: &Workload, i: usize, threads: &[u32]) -> Result<(), String> {
    let none = FaultPlan::none();
    let fault_plan = diff_fault_plan(w, i);
    let modes: [(&FaultPlan, bool); 3] = [(&none, false), (&none, true), (&fault_plan, false)];
    for (faults, tracing) in modes {
        let dense = run_under_exec(
            w,
            SchedulerKind::Dense,
            1,
            faults,
            tracing,
            ExecMode::Interp,
        );
        let covers = [
            ("dense+uop", SchedulerKind::Dense, 1, ExecMode::MicroOp),
            ("ready+interp", SchedulerKind::Ready, 1, ExecMode::Interp),
            ("ready+uop", SchedulerKind::Ready, 1, ExecMode::MicroOp),
            (
                "parallel+interp@2",
                SchedulerKind::Parallel,
                2,
                ExecMode::Interp,
            ),
        ];
        for (label, sched, t, exec) in covers {
            let other = run_under_exec(w, sched, t, faults, tracing, exec);
            diff_outcomes(w, &dense, label, &other, faults, tracing)?;
        }
        for &t in threads {
            let par = run_under_exec(
                w,
                SchedulerKind::Parallel,
                t,
                faults,
                tracing,
                ExecMode::MicroOp,
            );
            diff_outcomes(
                w,
                &dense,
                &format!("parallel+uop@{t}"),
                &par,
                faults,
                tracing,
            )?;
        }
    }
    Ok(())
}

/// Differentially check one workload in all three stress modes: plain,
/// tracing on, and a seeded single-event fault plan — the exec-mode grid
/// plus Parallel@2 under the micro-op engine, against the dense
/// interpreter oracle (the quick CI shape).
///
/// # Errors
/// The first divergence found (see [`check_workload_threads`]).
pub fn check_workload(w: &Workload, i: usize) -> Result<(), String> {
    check_workload_threads(w, i, &[2])
}

/// The full four-way differential: Dense vs Ready vs Parallel vs the
/// micro-op execution path, with Parallel at 1, 2, 4, and 8 planning
/// threads, in every stress mode.
///
/// # Errors
/// The first divergence found (see [`check_workload_threads`]).
pub fn check_workload_full(w: &Workload, i: usize) -> Result<(), String> {
    check_workload_threads(w, i, &[1, 2, 4, 8])
}

/// The planning thread counts every per-thread sweep (differential and
/// benchmark) covers.
pub const THREAD_SWEEP: [u32; 4] = [1, 2, 4, 8];

/// One row of `BENCH_sim.json`: wall-time under every scheduler for the
/// same workload, with the differential invariant re-asserted.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Workload name.
    pub workload: String,
    /// Simulated cycles (identical under every scheduler by contract).
    pub cycles: u64,
    /// Best-of-N wall-time under the dense scanner, milliseconds.
    pub dense_ms: f64,
    /// Best-of-N wall-time under the ready scheduler, milliseconds.
    pub ready_ms: f64,
    /// Best-of-N wall-time under the parallel scheduler at each of
    /// [`THREAD_SWEEP`] planning threads, milliseconds.
    pub par_ms: [f64; THREAD_SWEEP.len()],
    /// `try_fire` visits per simulated cycle, dense.
    pub dense_visits_per_cycle: f64,
    /// `try_fire` visits per simulated cycle, ready.
    pub ready_visits_per_cycle: f64,
}

impl BenchRow {
    /// Dense-over-ready wall-time ratio (> 1 means Ready is faster).
    pub fn speedup(&self) -> f64 {
        if self.ready_ms > 0.0 {
            self.dense_ms / self.ready_ms
        } else {
            f64::INFINITY
        }
    }

    /// Simulated cycles per wall-clock second under Ready.
    pub fn ready_cycles_per_sec(&self) -> f64 {
        if self.ready_ms > 0.0 {
            self.cycles as f64 / (self.ready_ms / 1e3)
        } else {
            f64::INFINITY
        }
    }
}

/// Time `w` under one scheduler: best of `reps` runs (min filters
/// scheduler-independent noise), returning (ms, cycles, visits).
/// Sub-~25 ms workloads get extra reps — a single timer-tick or cache
/// hiccup on a 3 ms run otherwise swings the ratio by several percent.
fn time_under(w: &Workload, scheduler: SchedulerKind, threads: u32, reps: u32) -> (f64, u64, u64) {
    let acc = baseline(w);
    // Compile once outside the timed region: the steady-state numbers
    // measure the engine, not lowering or cache probes.
    let comp = crate::sealed(w, &acc);
    let cfg = SimConfig::default()
        .with_scheduler(scheduler)
        .with_threads(threads);
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    let mut visits = 0;
    let mut run = |best: &mut f64| {
        let mut mem = w.fresh_memory();
        let t0 = Instant::now();
        let r = muir_sim::simulate_compiled(&comp, &mut mem, &[], &cfg)
            .unwrap_or_else(|e| panic!("{} ({scheduler:?}): {e}", w.name));
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        *best = best.min(dt);
        cycles = r.cycles;
        visits = r.stats.sched_visits;
    };
    for _ in 0..reps.max(1) {
        run(&mut best);
    }
    if best < 25.0 && best * f64::from(reps) < 100.0 {
        let extra = (100.0 / best.max(0.1)).min(32.0) as u32;
        for _ in 0..extra {
            run(&mut best);
        }
    }
    (best, cycles, visits)
}

/// Benchmark one workload under every scheduler (best of `reps`),
/// asserting the cycle counts agree.
///
/// # Panics
/// Panics if any run fails or the schedulers disagree on cycles.
pub fn bench_workload(w: &Workload, reps: u32) -> BenchRow {
    let (dense_ms, dense_cycles, dense_visits) = time_under(w, SchedulerKind::Dense, 1, reps);
    let (ready_ms, ready_cycles, ready_visits) = time_under(w, SchedulerKind::Ready, 1, reps);
    assert_eq!(
        dense_cycles, ready_cycles,
        "{}: schedulers disagree on cycle count",
        w.name
    );
    let mut par_ms = [0.0; THREAD_SWEEP.len()];
    for (slot, &t) in par_ms.iter_mut().zip(&THREAD_SWEEP) {
        let (ms, cycles, _) = time_under(w, SchedulerKind::Parallel, t, reps);
        assert_eq!(
            dense_cycles, cycles,
            "{}: parallel@{t} disagrees on cycle count",
            w.name
        );
        *slot = ms;
    }
    let per = |v: u64| v as f64 / dense_cycles.max(1) as f64;
    BenchRow {
        workload: w.name.to_string(),
        cycles: dense_cycles,
        dense_ms,
        ready_ms,
        par_ms,
        dense_visits_per_cycle: per(dense_visits),
        ready_visits_per_cycle: per(ready_visits),
    }
}

/// One thread-count point of the multi-run throughput benchmark: the
/// [`muir_sim::simulate_batch`] wall time for the same job list.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Worker threads handed to `simulate_batch`.
    pub threads: usize,
    /// Independent simulations in the batch.
    pub runs: usize,
    /// Wall time for the whole batch, milliseconds (best of reps).
    pub wall_ms: f64,
}

impl BatchPoint {
    /// Completed simulations per wall-clock second.
    pub fn runs_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.runs as f64 / (self.wall_ms / 1e3)
        } else {
            f64::INFINITY
        }
    }
}

/// Measure multi-run throughput scaling: `reps_per_workload` independent
/// jobs of every quick-set workload, batched per accelerator through
/// `simulate_batch` at each of [`THREAD_SWEEP`] thread counts. Every job's
/// results are asserted identical across thread counts (completion order
/// may differ; outputs may not).
///
/// # Panics
/// Panics if a job fails or any thread count changes a job's outcome.
pub fn bench_batch(reps_per_workload: usize, best_of: u32) -> Vec<BatchPoint> {
    let ws: Vec<Workload> = QUICK_SET.iter().map(|n| by_name(n).unwrap()).collect();
    let accs: Vec<_> = ws.iter().map(baseline).collect();
    // One sealed artifact per workload, shared by every thread-count point:
    // N batch jobs pay one compile, and the timed region is engine-only.
    let comps: Vec<_> = ws
        .iter()
        .zip(&accs)
        .map(|(w, acc)| crate::sealed(w, acc))
        .collect();
    let make_jobs = |w: &Workload| -> Vec<muir_sim::BatchJob> {
        (0..reps_per_workload)
            .map(|_| muir_sim::BatchJob {
                args: Vec::new(),
                mem: w.fresh_memory(),
                cfg: SimConfig::default(),
            })
            .collect()
    };
    let mut baseline_cycles: Vec<Vec<u64>> = Vec::new();
    let mut points = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let mut best = f64::INFINITY;
        let mut cycles_now: Vec<Vec<u64>> = Vec::new();
        for _ in 0..best_of.max(1) {
            cycles_now.clear();
            let t0 = Instant::now();
            for (w, comp) in ws.iter().zip(&comps) {
                let runs = muir_sim::simulate_batch_compiled(comp, make_jobs(w), threads);
                cycles_now.push(
                    runs.into_iter()
                        .map(|r| {
                            r.outcome
                                .unwrap_or_else(|e| panic!("{} batch job: {e}", w.name))
                                .cycles
                        })
                        .collect(),
                );
            }
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        if baseline_cycles.is_empty() {
            baseline_cycles = cycles_now;
        } else {
            assert_eq!(
                baseline_cycles, cycles_now,
                "batch outcomes changed at {threads} threads"
            );
        }
        points.push(BatchPoint {
            threads,
            runs: ws.len() * reps_per_workload,
            wall_ms: best,
        });
    }
    points
}

/// The quick subset used by the CI gate (small enough for a checked
/// build, varied enough to cover compute-, memory-, spawn-bound, and
/// tensor-graph-frontend shapes).
pub const QUICK_SET: [&str; 7] = ["GEMM", "FFT", "SPMV", "SAXPY", "STENCIL", "M-SORT", "ATTN"];

/// One workload's sealing cost — what a batch of N runs pays exactly once
/// since the engines share the `CompiledAccel` artifact.
#[derive(Debug, Clone)]
pub struct CompileRow {
    /// Workload name.
    pub workload: String,
    /// Wall time of one verify + lower (µs, best of 5).
    pub compile_us: f64,
    /// Sealed artifact heap size (bytes).
    pub size_bytes: usize,
}

/// Measure sealing cost for every quick-set workload (uncached compiles,
/// best of 5 so a cold allocator doesn't inflate the number).
pub fn measure_compile() -> Vec<CompileRow> {
    QUICK_SET
        .iter()
        .map(|n| {
            let w = by_name(n).unwrap();
            let acc = baseline(&w);
            let mut best = f64::INFINITY;
            let mut size = 0;
            for _ in 0..5 {
                let t0 = Instant::now();
                let comp = muir_core::compiled::CompiledAccel::compile(&acc)
                    .unwrap_or_else(|e| panic!("{n}: {e}"));
                best = best.min(t0.elapsed().as_secs_f64() * 1e6);
                size = comp.size_bytes();
            }
            CompileRow {
                workload: (*n).to_string(),
                compile_us: best,
                size_bytes: size,
            }
        })
        .collect()
}

/// Cold-vs-warm timing of the persistent result store over the quick
/// set, as measured through the batch evaluation service.
#[derive(Debug, Clone, Copy)]
pub struct StoreBench {
    /// Jobs evaluated in each phase.
    pub jobs: u64,
    /// Wall time of the cold (populate) phase.
    pub cold_ms: f64,
    /// Wall time of the warm (all store hits) phase.
    pub warm_ms: f64,
    /// Store hits in the warm phase (must equal `jobs`).
    pub hits: u64,
    /// Store misses in the cold phase (must equal `jobs`).
    pub misses: u64,
}

impl StoreBench {
    /// Cold / warm wall-time ratio.
    pub fn warm_speedup(&self) -> f64 {
        if self.warm_ms > 0.0 {
            self.cold_ms / self.warm_ms
        } else {
            0.0
        }
    }
}

/// Measure the store's cold-vs-warm cost on the quick set: one
/// [`crate::service::EvalService`] per workload over a shared fresh
/// store, then a second pass that must be served entirely from disk.
///
/// # Panics
/// Panics if any evaluation fails or the warm pass misses the store —
/// either is a store-layer bug, not a timing outcome.
pub fn bench_store() -> StoreBench {
    use crate::service::{EvalJob, EvalService, ServiceConfig};
    use muir_store::Store;

    let root = std::env::temp_dir().join(format!("muir-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut b = StoreBench {
        jobs: 0,
        cold_ms: 0.0,
        warm_ms: 0.0,
        hits: 0,
        misses: 0,
    };
    for n in QUICK_SET {
        let w = by_name(n).unwrap();
        let comp = CompiledAccel::compile_cached(&crate::baseline(&w)).unwrap();
        let job = EvalJob {
            cfg: SimConfig::default(),
            args: vec![],
            mem: w.fresh_memory(),
        };
        b.jobs += 1;

        let mut svc = EvalService::new(
            comp.clone(),
            Some(Store::open(&root)),
            ServiceConfig::default(),
        );
        svc.submit(job.clone());
        let t0 = Instant::now();
        let cold = svc.drain();
        b.cold_ms += t0.elapsed().as_secs_f64() * 1e3;
        assert!(cold[0].outcome.is_ok(), "{n}: cold run failed");
        b.misses += svc.store_stats().result_misses;

        let mut svc = EvalService::new(comp, Some(Store::open(&root)), ServiceConfig::default());
        svc.submit(job);
        let t0 = Instant::now();
        let warm = svc.drain();
        b.warm_ms += t0.elapsed().as_secs_f64() * 1e3;
        assert!(warm[0].from_store, "{n}: warm run missed the store");
        b.hits += svc.store_stats().result_hits;
    }
    let _ = std::fs::remove_dir_all(&root);
    b
}

/// Render the store cold/warm measurement for the terminal.
pub fn render_store(s: &StoreBench) -> String {
    format!(
        "{} jobs: cold {:.1} ms -> warm {:.1} ms ({:.1}x); \
         {} cold misses, {} warm hits (hit rate {}/{})\n",
        s.jobs,
        s.cold_ms,
        s.warm_ms,
        s.warm_speedup(),
        s.misses,
        s.hits,
        s.hits,
        s.jobs
    )
}

/// Benchmark the quick set or every workload; `reps` best-of runs each.
pub fn bench_all(quick: bool, reps: u32) -> Vec<BenchRow> {
    let ws: Vec<Workload> = if quick {
        QUICK_SET.iter().map(|n| by_name(n).unwrap()).collect()
    } else {
        all()
    };
    ws.iter().map(|w| bench_workload(w, reps)).collect()
}

/// Geometric-mean speedup over the rows.
pub fn geomean_speedup(rows: &[BenchRow]) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let s: f64 = rows.iter().map(|r| r.speedup().max(1e-9).ln()).sum();
    (s / rows.len() as f64).exp()
}

/// Serialize rows, batch-throughput points, per-workload sealing costs,
/// and the store cold/warm measurement to the `BENCH_sim.json` document.
pub fn bench_json(
    rows: &[BenchRow],
    batch: &[BatchPoint],
    compile: &[CompileRow],
    store: &StoreBench,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"sim-scheduler\",\n  \"unit\": \"ms\",\n");
    // The host's CPU budget: parallel-scheduler and batch speedups are
    // meaningless without it (a 1-CPU CI runner legitimately reports ~1x).
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!(
        "  \"geomean_speedup\": {:.4},\n  \"rows\": [\n",
        geomean_speedup(rows)
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"cycles\": {}, \"dense_ms\": {:.4}, \
             \"ready_ms\": {:.4}, \"par1_ms\": {:.4}, \"par2_ms\": {:.4}, \
             \"par4_ms\": {:.4}, \"par8_ms\": {:.4}, \"speedup\": {:.4}, \
             \"ready_cycles_per_sec\": {:.1}, \
             \"dense_visits_per_cycle\": {:.2}, \"ready_visits_per_cycle\": {:.2}}}{}\n",
            r.workload,
            r.cycles,
            r.dense_ms,
            r.ready_ms,
            r.par_ms[0],
            r.par_ms[1],
            r.par_ms[2],
            r.par_ms[3],
            r.speedup(),
            r.ready_cycles_per_sec(),
            r.dense_visits_per_cycle,
            r.ready_visits_per_cycle,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"batch\": [\n");
    let base = batch.first().map_or(0.0, |p| p.wall_ms);
    for (i, p) in batch.iter().enumerate() {
        let speedup = if p.wall_ms > 0.0 {
            base / p.wall_ms
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{\"threads\": {}, \"runs\": {}, \"wall_ms\": {:.4}, \
             \"runs_per_sec\": {:.1}, \"speedup\": {:.4}}}{}\n",
            p.threads,
            p.runs,
            p.wall_ms,
            p.runs_per_sec(),
            speedup,
            if i + 1 < batch.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"compile\": [\n");
    for (i, c) in compile.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"compile_us\": {:.1}, \"size_bytes\": {}}}{}\n",
            c.workload,
            c.compile_us,
            c.size_bytes,
            if i + 1 < compile.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"store\": {{\"jobs\": {}, \"cold_ms\": {:.4}, \"warm_ms\": {:.4}, \
         \"hits\": {}, \"misses\": {}, \"warm_speedup\": {:.4}}}\n",
        store.jobs,
        store.cold_ms,
        store.warm_ms,
        store.hits,
        store.misses,
        store.warm_speedup()
    ));
    out.push_str("}\n");
    out
}

/// Validate a `BENCH_sim.json` document with the crate's dependency-free
/// JSON parser: shape, required fields, and numeric sanity.
///
/// # Errors
/// A message naming the first schema violation.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    if doc.get("bench").and_then(Json::as_str) != Some("sim-scheduler") {
        return Err("missing or wrong `bench` tag".into());
    }
    if doc.get("unit").and_then(Json::as_str) != Some("ms") {
        return Err("missing or wrong `unit`".into());
    }
    match doc.get("host_cpus") {
        Some(Json::Num(v)) if v.is_finite() && *v >= 1.0 => {}
        other => {
            return Err(format!(
                "missing `host_cpus` (needed to interpret parallel speedups), got {}",
                other.map_or("nothing", Json::type_name)
            ))
        }
    }
    let Some(Json::Num(g)) = doc.get("geomean_speedup") else {
        return Err("missing numeric `geomean_speedup`".into());
    };
    if !g.is_finite() || *g <= 0.0 {
        return Err(format!("implausible geomean_speedup {g}"));
    }
    let Some(Json::Arr(rows)) = doc.get("rows") else {
        return Err("missing `rows` array".into());
    };
    if rows.is_empty() {
        return Err("`rows` is empty".into());
    }
    let mut has_tensor_graph = false;
    for (i, row) in rows.iter().enumerate() {
        for key in [
            "cycles",
            "dense_ms",
            "ready_ms",
            "par1_ms",
            "par2_ms",
            "par4_ms",
            "par8_ms",
            "speedup",
            "ready_cycles_per_sec",
            "dense_visits_per_cycle",
            "ready_visits_per_cycle",
        ] {
            match row.get(key) {
                Some(Json::Num(v)) if v.is_finite() && *v >= 0.0 => {}
                other => {
                    return Err(format!(
                        "row {i}: `{key}` must be a non-negative number, got {}",
                        other.map_or("nothing", Json::type_name)
                    ))
                }
            }
        }
        let Some(name) = row.get("workload").and_then(Json::as_str) else {
            return Err(format!("row {i}: missing `workload` string"));
        };
        // Every row must name a registry workload (catches drift between
        // the bench set and the suite), and the report must cover the
        // tensor-graph frontend families.
        match muir_workloads::REGISTRY.iter().find(|e| e.name == name) {
            Some(e) => has_tensor_graph |= matches!(e.class, muir_workloads::Class::TensorGraph),
            None => return Err(format!("row {i}: unknown workload `{name}`")),
        }
    }
    if !has_tensor_graph {
        return Err(
            "rows must include at least one tensor-graph family (ATTN/CONVNET/MT-INFER)".into(),
        );
    }
    let Some(Json::Arr(batch)) = doc.get("batch") else {
        return Err("missing `batch` array".into());
    };
    if batch.is_empty() {
        return Err("`batch` is empty".into());
    }
    for (i, p) in batch.iter().enumerate() {
        for key in ["threads", "runs", "wall_ms", "runs_per_sec", "speedup"] {
            match p.get(key) {
                Some(Json::Num(v)) if v.is_finite() && *v >= 0.0 => {}
                other => {
                    return Err(format!(
                        "batch point {i}: `{key}` must be a non-negative number, got {}",
                        other.map_or("nothing", Json::type_name)
                    ))
                }
            }
        }
    }
    let Some(Json::Arr(compile)) = doc.get("compile") else {
        return Err("missing `compile` array".into());
    };
    if compile.is_empty() {
        return Err("`compile` is empty".into());
    }
    for (i, c) in compile.iter().enumerate() {
        if c.get("workload").and_then(Json::as_str).is_none() {
            return Err(format!("compile row {i}: missing `workload` string"));
        }
        for key in ["compile_us", "size_bytes"] {
            match c.get(key) {
                Some(Json::Num(v)) if v.is_finite() && *v > 0.0 => {}
                other => {
                    return Err(format!(
                        "compile row {i}: `{key}` must be a positive number, got {}",
                        other.map_or("nothing", Json::type_name)
                    ))
                }
            }
        }
    }
    let Some(store @ Json::Obj(_)) = doc.get("store") else {
        return Err("missing `store` object".into());
    };
    for key in [
        "jobs",
        "cold_ms",
        "warm_ms",
        "hits",
        "misses",
        "warm_speedup",
    ] {
        match store.get(key) {
            Some(Json::Num(v)) if v.is_finite() && *v >= 0.0 => {}
            other => {
                return Err(format!(
                    "store: `{key}` must be a non-negative number, got {}",
                    other.map_or("nothing", Json::type_name)
                ))
            }
        }
    }
    // The warm pass must be a perfect hit run: misses populate, hits
    // serve, counts both equal to the job count.
    let num = |k: &str| match store.get(k) {
        Some(Json::Num(v)) => *v,
        _ => -1.0,
    };
    if num("jobs") < 1.0 || num("hits") != num("jobs") || num("misses") != num("jobs") {
        return Err(format!(
            "store: expected hits == misses == jobs >= 1, got jobs={} hits={} misses={}",
            num("jobs"),
            num("hits"),
            num("misses")
        ));
    }
    Ok(())
}

/// Render the benchmark table for the terminal.
pub fn render_rows(rows: &[BenchRow]) -> String {
    let mut out = format!(
        "{:>10} {:>12} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}\n",
        "Bench",
        "cycles",
        "dense ms",
        "ready ms",
        "par@1",
        "par@2",
        "par@4",
        "par@8",
        "speedup",
        "visits/c",
        "(ready)"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>12} {:>10.3} {:>10.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>7.2}x {:>9.1} {:>9.2}\n",
            r.workload,
            r.cycles,
            r.dense_ms,
            r.ready_ms,
            r.par_ms[0],
            r.par_ms[1],
            r.par_ms[2],
            r.par_ms[3],
            r.speedup(),
            r.dense_visits_per_cycle,
            r.ready_visits_per_cycle,
        ));
    }
    out.push_str(&format!(
        "{:>10} geomean speedup (ready vs dense): {:.2}x\n",
        "--", // aligns under the workload column
        geomean_speedup(rows)
    ));
    out
}

/// Render the batch-throughput scaling table for the terminal.
pub fn render_batch(points: &[BatchPoint]) -> String {
    let base = points.first().map_or(0.0, |p| p.wall_ms);
    let mut out = format!(
        "{:>10} {:>8} {:>10} {:>12} {:>8}\n",
        "threads", "runs", "wall ms", "runs/s", "speedup"
    );
    for p in points {
        out.push_str(&format!(
            "{:>10} {:>8} {:>10.2} {:>12.1} {:>7.2}x\n",
            p.threads,
            p.runs,
            p.wall_ms,
            p.runs_per_sec(),
            if p.wall_ms > 0.0 {
                base / p.wall_ms
            } else {
                0.0
            },
        ));
    }
    out
}

/// Render the per-workload sealing-cost table.
pub fn render_compile(rows: &[CompileRow]) -> String {
    let mut out = format!("{:>10} {:>12} {:>10}\n", "Bench", "compile us", "size KiB");
    for c in rows {
        out.push_str(&format!(
            "{:>10} {:>12.1} {:>10.1}\n",
            c.workload,
            c.compile_us,
            c.size_bytes as f64 / 1024.0
        ));
    }
    out
}
