//! Differential storage-fault campaign.
//!
//! For every storage failure class ([`StoreFaultClass`]) crossed with a
//! plain and a sim-fault-injected simulation configuration, the campaign
//! runs the same job set three ways through an [`EvalService`]:
//!
//! * **cold truth** — no store at all: the fault-free in-memory answer;
//! * **faulted run 1** — a fresh store with one seeded injected storage
//!   fault (write-path classes corrupt here);
//! * **faulted run 2** — the same store re-queried (read-path classes
//!   corrupt here; write-path corruption planted in run 1 is detected
//!   here).
//!
//! The campaign passes only if **every** outcome of every run is
//! end-state-identical (`end_state_hash`) to the cold truth, every
//! injected corruption surfaced as a typed `E-STORE-*` warning of the
//! class's expected code, and a final fourth drain is served entirely
//! from the (repaired) store. That is the store's whole robustness
//! contract in one harness: storage faults may cost time, never answers.

use crate::service::{EvalJob, EvalOutcome, EvalService, ServiceConfig};
use crate::testgen::gen_case;
use muir_core::rng::SplitMix64;
use muir_core::CompiledAccel;
use muir_sim::FaultPlan;
use muir_store::{Store, StoreFaultClass, StoreFaultPlan};
use std::fmt;
use std::path::Path;

/// One (storage-fault class × sim mode) campaign cell.
#[derive(Debug)]
pub struct StoreCampaignRow {
    /// The injected storage failure class.
    pub class: StoreFaultClass,
    /// `"plain"` or `"sim-faulted"` (seeded hardware fault injection in
    /// the simulation itself).
    pub sim_mode: &'static str,
    /// Jobs evaluated per run.
    pub jobs: usize,
    /// Typed `E-STORE-*` codes observed across the faulted runs.
    pub codes: Vec<String>,
    /// Whether the class's expected code was among them.
    pub code_ok: bool,
    /// Whether every faulted-run outcome matched the cold truth.
    pub end_state_ok: bool,
    /// Store hits in the final (fully warm) drain.
    pub warm_hits: u64,
    /// Whether the final drain was served entirely from the store.
    pub warm_ok: bool,
}

impl StoreCampaignRow {
    /// Whether this cell met the full contract.
    pub fn pass(&self) -> bool {
        self.code_ok && self.end_state_ok && self.warm_ok
    }
}

/// The full campaign result.
#[derive(Debug, Default)]
pub struct StoreCampaignReport {
    /// One row per (class × sim mode).
    pub rows: Vec<StoreCampaignRow>,
}

impl StoreCampaignReport {
    /// Whether every cell passed.
    pub fn all_pass(&self) -> bool {
        !self.rows.is_empty() && self.rows.iter().all(StoreCampaignRow::pass)
    }
}

impl fmt::Display for StoreCampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "store fault campaign: {} cells, {}",
            self.rows.len(),
            if self.all_pass() {
                "all pass"
            } else {
                "FAILURES"
            }
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<16} x {:<11} jobs={} end_state={} codes={:?} warm_hits={} -> {}",
                r.class.name(),
                r.sim_mode,
                r.jobs,
                if r.end_state_ok {
                    "identical"
                } else {
                    "DIVERGED"
                },
                r.codes,
                r.warm_hits,
                if r.pass() { "pass" } else { "FAIL" },
            )?;
        }
        Ok(())
    }
}

/// The `E-STORE-*` codes an injected class is allowed to surface as.
/// A read-side bit flip may land in any header field, so it accepts the
/// whole validation family.
fn expected_codes(class: StoreFaultClass) -> &'static [&'static str] {
    match class {
        StoreFaultClass::TruncateWrite => &["E-STORE-TRUNC"],
        StoreFaultClass::BitFlipRead => &[
            "E-STORE-CHECKSUM",
            "E-STORE-MAGIC",
            "E-STORE-VERSION",
            "E-STORE-TRUNC",
        ],
        StoreFaultClass::RenameFail => &["E-STORE-IO"],
        StoreFaultClass::StaleVersion => &["E-STORE-VERSION"],
    }
}

/// Extract the `[E-STORE-*]` code prefix of a service warning.
fn warning_code(w: &str) -> Option<&str> {
    let rest = w.strip_prefix('[')?;
    let end = rest.find(']')?;
    Some(&rest[..end])
}

/// The campaign's job set for one cell: the same compiled case evaluated
/// at three pipeline-window design points (three distinct store keys).
fn cell_jobs(seed: u64, sim_faulted: bool) -> (std::sync::Arc<CompiledAccel>, Vec<EvalJob>) {
    let case = gen_case(seed, 1);
    let acc = case.build();
    let comp = CompiledAccel::compile_cached(&acc).expect("generated cases compile");
    let jobs = [8u64, 16, 32]
        .iter()
        .map(|&window| {
            let mut cfg = case.cfg.clone();
            cfg.window = window;
            if sim_faulted {
                cfg.faults = FaultPlan::single(case.fault_class, case.fault_seed);
            }
            EvalJob {
                cfg,
                args: vec![],
                mem: case.fresh_memory(),
            }
        })
        .collect();
    (comp, jobs)
}

fn end_states(outcomes: &[EvalOutcome]) -> Vec<u64> {
    outcomes.iter().map(EvalOutcome::end_state).collect()
}

/// Run the full campaign under `root` (each cell gets its own store
/// directory; the caller owns cleanup of `root`).
pub fn run_store_campaign(root: &Path) -> StoreCampaignReport {
    let mut report = StoreCampaignReport::default();
    for (ci, &class) in StoreFaultClass::ALL.iter().enumerate() {
        for (mi, sim_mode) in ["plain", "sim-faulted"].iter().enumerate() {
            let combo = (ci * 2 + mi) as u64;
            let seed = SplitMix64::salted(0x570e_ca3f, combo).next_u64();
            let sim_faulted = mi == 1;

            // Cold truth: no store, same service pipeline.
            let (comp, jobs) = cell_jobs(seed, sim_faulted);
            let mut cold = EvalService::new(comp.clone(), None, ServiceConfig::default());
            for j in &jobs {
                cold.submit(j.clone());
            }
            let truth = end_states(&cold.drain());

            // Faulted store: one seeded injected fault of this class.
            let store_root = root.join(format!("cell-{}-{}", class.name(), sim_mode));
            let store =
                Store::open_with_faults(&store_root, StoreFaultPlan::single(class, seed ^ combo));
            let mut svc = EvalService::new(comp, Some(store), ServiceConfig::default());
            let mut codes: Vec<String> = Vec::new();
            let mut end_state_ok = true;
            // Run 1 populates (write-path faults fire), run 2 re-reads
            // (read-path faults fire and planted corruption is detected),
            // run 3 must be fully warm.
            let mut warm_hits = 0;
            let mut warm_ok = false;
            for run in 0..3 {
                for j in &jobs {
                    svc.submit(j.clone());
                }
                let outcomes = svc.drain();
                end_state_ok &= end_states(&outcomes) == truth;
                for o in &outcomes {
                    for w in &o.store_warnings {
                        if let Some(c) = warning_code(w) {
                            if !codes.iter().any(|k| k == c) {
                                codes.push(c.to_string());
                            }
                        }
                    }
                }
                if run == 2 {
                    // Errored evaluations are (correctly) never memoized;
                    // every successful one must now be a store hit.
                    warm_ok = outcomes.iter().all(|o| o.from_store || o.outcome.is_err());
                    warm_hits = outcomes.iter().filter(|o| o.from_store).count() as u64;
                }
            }
            let code_ok = codes
                .iter()
                .any(|c| expected_codes(class).contains(&c.as_str()));
            report.rows.push(StoreCampaignRow {
                class,
                sim_mode,
                jobs: jobs.len(),
                codes,
                code_ok,
                end_state_ok,
                warm_hits,
                warm_ok,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_sim::{result_hash, simulate_compiled};
    use muir_store::{ResultKey, StoredEval};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_root(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("muir-camp-test-{}-{tag}-{n}", std::process::id()))
    }

    /// Property: for 50 seeded random graphs, a store round trip is a
    /// perfect identity on the evaluation — `result_hash` and the final
    /// memory image survive encode → seal → disk → open → decode.
    #[test]
    fn store_round_trip_is_identity_for_fuzzed_graphs() {
        let root = test_root("prop");
        let mut store = Store::open(&root);
        for i in 0..50u64 {
            let seed = SplitMix64::salted(0x0b5e_55ed, i).next_u64();
            let case = gen_case(seed, 1);
            let comp = CompiledAccel::compile_cached(&case.build()).unwrap();
            let mut mem = case.fresh_memory();
            let result = simulate_compiled(&comp, &mut mem, &[], &case.cfg)
                .unwrap_or_else(|e| panic!("{}: fault-free case must complete: {e}", case.desc));
            let key = ResultKey::new(&comp, &case.cfg, &[], &case.fresh_memory());
            let eval = StoredEval { result, mem };
            store.put_result(key, &eval).unwrap();
            let got = store.get_result(key).unwrap().expect("warm hit");
            assert_eq!(
                result_hash(&got.result),
                result_hash(&eval.result),
                "{}: result hash must survive the round trip",
                case.desc
            );
            assert_eq!(got.mem, eval.mem, "{}: memory image differs", case.desc);
            assert_eq!(got, eval, "{}: full evaluation differs", case.desc);
        }
        let s = store.stats();
        assert_eq!(
            (s.result_puts, s.result_hits, s.corrupt_entries),
            (50, 50, 0)
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The tentpole proof: after any injected storage fault, in plain and
    /// sim-faulted modes alike, every end state is bit-identical to the
    /// fault-free cold run, every corruption surfaced typed, and the
    /// repaired store serves the final drain warm.
    #[test]
    fn campaign_end_states_are_identical_across_all_fault_classes() {
        let root = test_root("campaign");
        let report = run_store_campaign(&root);
        assert_eq!(report.rows.len(), 8, "4 classes x 2 sim modes");
        assert!(report.all_pass(), "campaign failures:\n{report}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
