//! `muir-bench` — the experiment harness regenerating every table and
//! figure of the paper's evaluation (§5–§7).
//!
//! The `experiments` binary prints each table/figure's rows; the Criterion
//! benches under `benches/` time representative kernels of the same
//! experiments. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.

pub mod campaign;
pub mod dse;
pub mod profile;
pub mod sched;
pub mod service;
pub mod store_campaign;
pub mod telemetry_gate;
pub mod testgen;

use muir_baselines::{CpuModel, HlsModel};
use muir_core::accel::Accelerator;
use muir_core::compiled::CompiledAccel;
use muir_frontend::{translate, FrontendConfig};
use muir_rtl::cost::{estimate, CostEstimate, Tech};
use muir_sim::{simulate, SimConfig, SimResult};
use muir_uopt::passes::{
    CacheBanking, ExecutionTiling, LowerTensors, MemoryLocalization, OpFusion, ScratchpadBanking,
    TaskFilter, TaskQueueing,
};
use muir_uopt::{PassManager, PassReport};
use muir_workloads::{Class, Workload};

/// Translate a workload to its baseline accelerator.
///
/// # Panics
/// Panics on translation failure (workloads are all known-good).
pub fn baseline(w: &Workload) -> Accelerator {
    translate(&w.module, &FrontendConfig::default()).unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

/// Simulate `acc` on the workload's inputs and verify outputs against the
/// reference interpreter.
///
/// # Panics
/// Panics on simulation failure or output mismatch.
pub fn run_verified(w: &Workload, acc: &Accelerator) -> SimResult {
    let ref_mem = w
        .run_reference()
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let mut mem = w.fresh_memory();
    let r = simulate(acc, &mut mem, &[], &SimConfig::default())
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    assert!(
        w.outputs_match(&ref_mem, &mem),
        "{}: accelerator outputs diverge from reference",
        w.name
    );
    r
}

/// Apply a pass pipeline to a fresh baseline of `w`.
///
/// # Panics
/// Panics on pass failure.
pub fn optimized(w: &Workload, pm: &PassManager) -> (Accelerator, PassReport) {
    let mut acc = baseline(w);
    let report = pm
        .run(&mut acc)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    (acc, report)
}

/// The stacked-pass pipeline of Figure 17, following the figure's legend:
/// Cilk workloads get *banking + fusion + tiling*; the rest get *banking +
/// localization + op-fusion*.
pub fn full_stack(class: Class) -> PassManager {
    match class {
        Class::Cilk => PassManager::new()
            .with(TaskQueueing::all(8))
            .with(ExecutionTiling::spawned(8))
            .with(MemoryLocalization::default())
            .with(ScratchpadBanking { banks: 4 })
            .with(CacheBanking { banks: 4 })
            .with(OpFusion::default()),
        _ => PassManager::new()
            .with(TaskQueueing::all(8))
            .with(MemoryLocalization::default())
            .with(ScratchpadBanking { banks: 4 })
            .with(CacheBanking { banks: 4 })
            .with(OpFusion::default()),
    }
}

/// The "best version of each accelerator with all the μopt optimizations
/// applied" used against the CPU in Figure 18 — the Figure 17 stack plus
/// execution tiling of the innermost loop tasks (§3.6).
pub fn best_stack(class: Class) -> PassManager {
    match class {
        Class::Cilk => full_stack(class),
        _ => PassManager::new()
            .with(TaskQueueing::all(8))
            .with(ExecutionTiling {
                tiles: 4,
                filter: TaskFilter::LeafLoops,
            })
            .with(MemoryLocalization::default())
            .with(ScratchpadBanking { banks: 4 })
            .with(CacheBanking { banks: 4 })
            .with(OpFusion::default()),
    }
}

/// Seal a workload's accelerator through the compile cache; since
/// `run_verified`/`simulate` compile the same graph, estimating cost after
/// a simulation reuses the artifact instead of re-lowering.
pub fn sealed(w: &Workload, acc: &Accelerator) -> std::sync::Arc<CompiledAccel> {
    CompiledAccel::compile_cached(acc).unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

/// Execution time in microseconds at the estimated FPGA clock.
pub fn exec_time_us(cycles: u64, cost: &CostEstimate) -> f64 {
    cycles as f64 / cost.fmax_mhz
}

/// Baseline μIR execution time (µs) on the FPGA clock.
pub fn uir_time_us(w: &Workload, acc: &Accelerator, cycles: u64) -> f64 {
    exec_time_us(cycles, &estimate(&sealed(w, acc), Tech::FpgaArria10))
}

/// The HLS comparison result for Figure 9: `(uir_time, hls_time)` in µs.
///
/// The paper's observation 1 (§5.2): μIR's dataflow pipelines ~20% deeper
/// and clocks ~20% higher than the HLS FSM; FFT and DENSE keep vendor
/// streaming buffers on the HLS side.
///
/// # Panics
/// Panics on simulation/interpretation failure.
pub fn fig9_point(w: &Workload) -> (f64, f64) {
    let acc = baseline(w);
    let r = run_verified(w, &acc);
    let uir_cost = estimate(&sealed(w, &acc), Tech::FpgaArria10);
    let uir_time = exec_time_us(r.cycles, &uir_cost);

    let streaming = matches!(w.name, "FFT" | "DENSE8" | "DENSE16");
    let hls = if streaming {
        HlsModel::with_streaming()
    } else {
        HlsModel::default()
    };
    let mut mem = w.fresh_memory();
    let hls_r = hls
        .run(&w.module, &mut mem)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let hls_fmax = uir_cost.fmax_mhz / 1.2; // §5.2 observation 1
    let hls_time = hls_r.cycles as f64 / hls_fmax;
    (uir_time, hls_time)
}

/// Figure 18 point: `(accelerator_time_us, cpu_time_us)`.
///
/// # Panics
/// Panics on simulation failure.
pub fn fig18_point(w: &Workload) -> (f64, f64) {
    let (acc, _) = optimized(w, &best_stack(w.class));
    let r = run_verified(w, &acc);
    let t_acc = uir_time_us(w, &acc, r.cycles);
    let mut mem = w.fresh_memory();
    let cpu = CpuModel::default()
        .run(&w.module, &mut mem)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    (t_acc, cpu.time_us)
}

/// Tiling sweep (Figure 12): cycles at 1, 2, 4, 8 tiles.
///
/// # Panics
/// Panics on simulation failure.
pub fn fig12_sweep(w: &Workload) -> Vec<(u32, u64)> {
    // The Cilk accelerators stream through scratchpads (Figure 4); the
    // memory system is held constant across the sweep (localized, 4 banks)
    // so the tiling factor is the only variable.
    [1u32, 2, 4, 8]
        .into_iter()
        .map(|t| {
            let pm = PassManager::new()
                .with(MemoryLocalization::default())
                .with(ScratchpadBanking { banks: 4 })
                .with(TaskQueueing::all(2 * t))
                .with(ExecutionTiling {
                    tiles: t,
                    filter: TaskFilter::Spawned,
                });
            let (acc, _) = optimized(w, &pm);
            (t, run_verified(w, &acc).cycles)
        })
        .collect()
}

/// Cache-banking sweep (Figure 16): cycles at 1, 2, 4 banks.
///
/// # Panics
/// Panics on simulation failure.
pub fn fig16_sweep(w: &Workload) -> Vec<(u32, u64)> {
    [1u32, 2, 4]
        .into_iter()
        .map(|banks| {
            let pm = PassManager::new().with(CacheBanking { banks });
            let (acc, _) = optimized(w, &pm);
            (banks, run_verified(w, &acc).cycles)
        })
        .collect()
}

/// Op-fusion point (Figure 11): `(baseline_cycles, fused_cycles)`.
///
/// # Panics
/// Panics on simulation failure.
pub fn fig11_point(w: &Workload) -> (u64, u64) {
    let acc = baseline(w);
    let base = run_verified(w, &acc).cycles;
    let (fused, _) = optimized(w, &PassManager::new().with(OpFusion::default()));
    let opt = run_verified(w, &fused).cycles;
    (base, opt)
}

/// Tensor higher-order op point (Figure 15): `(tensor, scalar)` cycles.
///
/// The baseline is the paper's: the same computation written without
/// tensor intrinsics ("implements the operation through the pipeline"),
/// so the tensor variant's wins come from compute density, the widened
/// operand network, and the fused higher-order pipeline (§6.3). Both
/// variants run on localized scratchpads (type-specific for the tensor
/// side).
///
/// # Panics
/// Panics on simulation failure.
pub fn fig15_point(pair: &(Workload, Workload)) -> (u64, u64) {
    let pm = PassManager::new()
        .with(MemoryLocalization::default())
        .with(OpFusion::default());
    let (tensor_acc, _) = optimized(&pair.0, &pm);
    let t = run_verified(&pair.0, &tensor_acc).cycles;
    let (scalar_acc, _) = optimized(&pair.1, &pm);
    let s = run_verified(&pair.1, &scalar_acc).cycles;
    (t, s)
}

/// Lane-lowering ablation (§6.3): the same tensor graph with every tile
/// value lane-expanded by the `LowerTensors` pass — isolates the benefit
/// of the tensor function units from the source-level loop structure.
///
/// # Panics
/// Panics on simulation failure.
pub fn fig15_lowering_ablation(w: &Workload) -> (u64, u64) {
    let native_pm = PassManager::new().with(MemoryLocalization::default());
    let (native, _) = optimized(w, &native_pm);
    let n = run_verified(w, &native).cycles;
    let lowered_pm = PassManager::new()
        .with(LowerTensors)
        .with(MemoryLocalization::default());
    let (lowered, _) = optimized(w, &lowered_pm);
    let l = run_verified(w, &lowered).cycles;
    (n, l)
}

/// Memory-localization point (§6.4): `(baseline, localized)` cycles.
///
/// # Panics
/// Panics on simulation failure.
pub fn localization_point(w: &Workload) -> (u64, u64) {
    let acc = baseline(w);
    let base = run_verified(w, &acc).cycles;
    let (local, _) = optimized(w, &PassManager::new().with(MemoryLocalization::default()));
    let opt = run_verified(w, &local).cycles;
    (base, opt)
}

/// Ablation: task-queue depth sweep (Pass 1) on a Cilk workload.
///
/// # Panics
/// Panics on simulation failure.
pub fn ablation_queue_depth(w: &Workload, depths: &[u32]) -> Vec<(u32, u64)> {
    // Queue depth matters once the consumer is replicated: hold tiling
    // fixed at 4 and vary only the `<||>` FIFO.
    depths
        .iter()
        .map(|&d| {
            let pm = PassManager::new()
                .with(ExecutionTiling::spawned(4))
                .with(TaskQueueing::all(d));
            let (acc, _) = optimized(w, &pm);
            (d, run_verified(w, &acc).cycles)
        })
        .collect()
}

/// Ablation: fusion clock-period budget sweep — cycles and resulting FPGA
/// fmax per budget (the frequency/cycle-count tradeoff of §6.1).
///
/// # Panics
/// Panics on simulation failure.
pub fn ablation_fusion_period(w: &Workload, periods_ns: &[f64]) -> Vec<(f64, u64, f64)> {
    periods_ns
        .iter()
        .map(|&p| {
            let pm = PassManager::new().with(OpFusion::with_period(p));
            let (acc, _) = optimized(w, &pm);
            let cycles = run_verified(w, &acc).cycles;
            let fmax = estimate(&sealed(w, &acc), Tech::FpgaArria10).fmax_mhz;
            (p, cycles, fmax)
        })
        .collect()
}

/// Ablation: scratchpad banking sweep after localization (Algorithm 2's
/// tunables, separate from Figure 16's cache banking).
///
/// # Panics
/// Panics on simulation failure.
pub fn ablation_spad_banking(w: &Workload, banks: &[u32]) -> Vec<(u32, u64)> {
    banks
        .iter()
        .map(|&b| {
            let pm = PassManager::new()
                .with(MemoryLocalization::default())
                .with(ScratchpadBanking { banks: b });
            let (acc, _) = optimized(w, &pm);
            (b, run_verified(w, &acc).cycles)
        })
        .collect()
}

/// Ablation: simulator sensitivity to databox entries and elastic channel
/// depth (§3.4's `#Entries` parameter and the pipelined-connection
/// buffering). Returns `(databox, elastic, cycles)` triples.
///
/// # Panics
/// Panics on simulation failure.
pub fn ablation_sim_buffers(w: &Workload, points: &[(u32, u32)]) -> Vec<(u32, u32, u64)> {
    let acc = baseline(w);
    let ref_mem = w.run_reference().expect("reference");
    points
        .iter()
        .map(|&(databox, elastic)| {
            let cfg = SimConfig {
                databox_entries: databox,
                elastic_depth: elastic,
                ..SimConfig::default()
            };
            let mut mem = w.fresh_memory();
            let r = simulate(&acc, &mut mem, &[], &cfg).expect("simulate");
            assert!(
                w.outputs_match(&ref_mem, &mem),
                "{}: buffering changed results",
                w.name
            );
            (databox, elastic, r.cycles)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_workloads::by_name;

    #[test]
    fn fig11_improves_rgb2yuv() {
        // RGB2YUV's integer chains are the canonical fusion target.
        let w = by_name("RGB2YUV").unwrap();
        let (base, opt) = fig11_point(&w);
        assert!(opt < base, "fusion should help: {base} → {opt}");
    }

    #[test]
    fn fig12_saxpy_scales_then_bounds() {
        let w = by_name("SAXPY").unwrap();
        let sweep = fig12_sweep(&w);
        let c1 = sweep[0].1 as f64;
        let c2 = sweep[1].1 as f64;
        let c8 = sweep[3].1 as f64;
        assert!(c2 < c1, "{sweep:?}");
        assert!(c8 < c2, "{sweep:?}");
        // Bounded below by the parent's spawn rate (one task per cycle):
        // 8 tiles cannot beat one iteration per cycle.
        assert!(c8 >= 4096.0, "{sweep:?}");
    }

    #[test]
    fn fig16_banking_helps_gemm() {
        let w = by_name("GEMM").unwrap();
        let sweep = fig16_sweep(&w);
        assert!(sweep[2].1 <= sweep[0].1, "{sweep:?}");
    }

    #[test]
    fn fig15_tensor_units_win() {
        let pair = muir_workloads::inhouse::tensor_pairs().remove(0);
        let (tensor, scalar) = fig15_point(&pair);
        assert!(scalar > tensor, "{tensor} vs {scalar}");
        let w = by_name("RELU[T]").unwrap();
        let (native, lowered) = fig15_lowering_ablation(&w);
        assert!(lowered > native, "{native} vs {lowered}");
    }

    #[test]
    fn fig9_uir_beats_hls_on_gemm() {
        let w = by_name("GEMM").unwrap();
        let (uir, hls) = fig9_point(&w);
        assert!(uir < hls, "uir {uir} vs hls {hls}");
    }

    #[test]
    fn fig18_accelerator_beats_cpu() {
        let w = by_name("IMG-SCALE").unwrap();
        let (acc, cpu) = fig18_point(&w);
        assert!(acc < cpu, "acc {acc} vs cpu {cpu}");
    }
}
