//! Seeded random well-formed μIR graph generator and its differential
//! checker.
//!
//! `gen_case` derives a complete test case — a verifier-clean module, its
//! input data, the μopt passes to apply, and the simulation dimensions —
//! from a single `splitmix64` seed, so every case is reproducible from
//! two integers (`seed`, `size`). `check_case` runs the case under every
//! scheduler (`Dense`, `Ready`, `Parallel` at 1/2/4/8 planning threads)
//! and both firing interpreters (`Interp` and the compiled `MicroOp`
//! stream) in plain, traced, and seeded-fault modes, demanding
//! bit-identical observables and — on fault-free completions —
//! word-for-word agreement with the `muir-mir` reference interpreter.
//!
//! Shrinking is by seed: the generator's `size` knob bounds trip counts,
//! op-chain depth, and structural features, so a failure at the default
//! size is re-checked at smaller sizes and reported as the smallest
//! failing `(seed, size)` reproduction line.

use muir_core::rng::SplitMix64;
use muir_frontend::{translate, FrontendConfig};
use muir_mir::builder::FunctionBuilder;
use muir_mir::instr::{CmpPred, MemObjId, ValueRef};
use muir_mir::interp::{Interp, Memory};
use muir_mir::module::Module;
use muir_mir::types::{ScalarType, Type};
use muir_sim::{ExecMode, FaultClass, FaultPlan, SchedulerKind, SimConfig, TraceConfig};
use muir_uopt::passes::{
    ExecutionTiling, MemoryLocalization, OpFusion, ScratchpadBanking, TaskFilter,
};
use muir_uopt::PassManager;

/// The binary integer ops the generator chains (all total on `i64`, so
/// the interpreter reference is always defined).
#[derive(Debug, Clone, Copy)]
enum ExprOp {
    Add,
    Sub,
    Mul,
    And,
    Xor,
    Shl3,
}

const OPS: [ExprOp; 6] = [
    ExprOp::Add,
    ExprOp::Sub,
    ExprOp::Mul,
    ExprOp::And,
    ExprOp::Xor,
    ExprOp::Shl3,
];

fn apply(b: &mut FunctionBuilder, op: ExprOp, x: ValueRef, y: ValueRef) -> ValueRef {
    match op {
        ExprOp::Add => b.add(x, y),
        ExprOp::Sub => b.sub(x, y),
        ExprOp::Mul => b.mul(x, y),
        ExprOp::And => b.and(x, y),
        ExprOp::Xor => b.xor(x, y),
        ExprOp::Shl3 => {
            let s = b.and(y, ValueRef::int(3));
            b.shl(x, s)
        }
    }
}

/// The loop shape of a generated case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// `out[i] = chain(a[i], i)`.
    Map,
    /// `out[0] = fold(init, a[..])` via a register accumulator.
    Reduce,
    /// `out[i] = pred ? f(a[i]) : g(a[i])` via `if_val`.
    Predicated,
    /// A spawned `par_for` body (tiled when the pass roll says so).
    Spawn,
}

/// One generated case: everything needed to build, transform, and run a
/// random accelerator, reproducible from `(seed, size)`.
pub struct GenCase {
    /// The generating seed.
    pub seed: u64,
    /// The size knob it was generated at (0 = smallest).
    pub size: u8,
    /// The verifier-clean module.
    pub module: Module,
    /// Input memory object and its initial contents.
    pub init: (MemObjId, Vec<i64>),
    /// Output memory object (compared against the reference).
    pub out: MemObjId,
    /// Simulation dimensions shared by every scheduler run of the case.
    pub cfg: SimConfig,
    /// Seed for the case's fault-mode plan.
    pub fault_seed: u64,
    /// Fault class for the case's fault-mode plan.
    pub fault_class: FaultClass,
    /// Human-readable shape summary for failure reports.
    pub desc: String,
}

impl GenCase {
    /// Translate the module and apply the case's μopt pass roll (also
    /// seed-derived, replayed here so the accelerator isn't stored).
    ///
    /// # Panics
    /// Panics if translation or a pass fails — generated modules are
    /// well-formed by construction, so that is a generator bug.
    pub fn build(&self) -> muir_core::accel::Accelerator {
        let mut rng = SplitMix64::salted(self.seed, 0x9a55);
        let mut acc = translate(&self.module, &FrontendConfig::default())
            .unwrap_or_else(|e| panic!("{}: translate: {e}", self.desc));
        let mut pm = PassManager::new();
        let mut any = false;
        if rng.chance_ppm(400_000) {
            pm = pm.with(MemoryLocalization::default());
            any = true;
            if rng.chance_ppm(500_000) {
                let banks = 1 + rng.below(4) as u32;
                pm = pm.with(ScratchpadBanking { banks });
            }
        }
        if rng.chance_ppm(400_000) {
            pm = pm.with(OpFusion::default());
            any = true;
        }
        if self.desc.contains("spawn") && rng.chance_ppm(500_000) {
            let tiles = 2 + rng.below(3) as u32;
            pm = pm.with(ExecutionTiling {
                tiles,
                filter: TaskFilter::Spawned,
            });
            any = true;
        }
        if any {
            pm.run(&mut acc)
                .unwrap_or_else(|e| panic!("{}: passes: {e}", self.desc));
        }
        acc
    }

    /// A fresh memory image with the case's inputs applied.
    pub fn fresh_memory(&self) -> Memory {
        let mut mem = Memory::from_module(&self.module);
        mem.init_i64(self.init.0, &self.init.1);
        mem
    }
}

/// Generate the case for `(seed, size)`. `size` bounds trip counts and
/// op-chain depth: 0 is the shrink floor (4–7 iterations, ≤ 2 ops), 2 the
/// default fuzzing size (16–31 iterations, ≤ 5 ops).
pub fn gen_case(seed: u64, size: u8) -> GenCase {
    let size = size.min(2);
    let mut rng = SplitMix64::salted(seed, u64::from(size));
    let n = match size {
        0 => 4 + rng.below(4) as i64,
        1 => 8 + rng.below(8) as i64,
        _ => 16 + rng.below(16) as i64,
    };
    let max_ops = match size {
        0 => 2,
        1 => 3,
        _ => 5,
    };
    let ops: Vec<ExprOp> = (0..1 + rng.below(max_ops))
        .map(|_| OPS[rng.below(OPS.len() as u64) as usize])
        .collect();
    let shape = match rng.below(4) {
        0 => Shape::Map,
        1 => Shape::Reduce,
        2 => Shape::Predicated,
        _ => Shape::Spawn,
    };
    let data: Vec<i64> = (0..n).map(|_| rng.below(201) as i64 - 100).collect();

    let mut m = Module::new("fuzz");
    let a = m.add_ro_mem_object("a", ScalarType::I32, n as u64);
    let out_len = if shape == Shape::Reduce { 1 } else { n as u64 };
    let out = m.add_mem_object("out", ScalarType::I32, out_len);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    match shape {
        Shape::Map => {
            let ops = ops.clone();
            b.for_loop(0, ValueRef::int(n), 1, move |b, i| {
                let v = b.load(a, i);
                let mut cur = v;
                for &op in &ops {
                    cur = apply(b, op, cur, i);
                }
                b.store(out, i, cur);
            });
        }
        Shape::Reduce => {
            let init = rng.below(21) as i64 - 10;
            let accs = b.for_loop_acc(
                ValueRef::int(0),
                ValueRef::int(n),
                1,
                &[(ValueRef::int(init), Type::I64)],
                |b, i, accs| {
                    let v = b.load(a, i);
                    let s = b.add(accs[0], v);
                    let _ = i;
                    vec![s]
                },
            );
            b.store(out, ValueRef::int(0), accs[0]);
        }
        Shape::Predicated => {
            let threshold = rng.below(41) as i64 - 20;
            let ops = ops.clone();
            b.for_loop(0, ValueRef::int(n), 1, move |b, i| {
                let v = b.load(a, i);
                let c = b.icmp(CmpPred::Lt, v, ValueRef::int(threshold));
                let r = b.if_val(
                    c,
                    &[Type::I64],
                    |b| {
                        let mut cur = ValueRef::Instr(v.as_instr().unwrap());
                        for &op in &ops {
                            cur = apply(b, op, cur, ValueRef::int(3));
                        }
                        vec![cur]
                    },
                    |b| vec![b.sub(ValueRef::Instr(v.as_instr().unwrap()), ValueRef::int(1))],
                );
                b.store(out, i, r[0]);
            });
        }
        Shape::Spawn => {
            let ops = ops.clone();
            b.par_for(0, n, 1, move |b, i| {
                let v = b.load(a, i);
                let mut cur = v;
                for &op in &ops {
                    cur = apply(b, op, cur, i);
                }
                b.store(out, i, cur);
            });
        }
    }
    b.ret(None);
    m.add_function(b.finish());

    let cfg = SimConfig {
        max_cycles: 2_000_000,
        deadlock_cycles: 10_000,
        databox_entries: 1 + rng.below(8) as u32,
        elastic_depth: 1 + rng.below(8) as u32,
        window: 2 + rng.below(63),
        ..SimConfig::default()
    };
    let fault_class = FaultClass::ALL[rng.below(FaultClass::ALL.len() as u64) as usize];
    let fault_seed = rng.next_u64();
    GenCase {
        seed,
        size,
        module: m,
        init: (a, data),
        out,
        cfg,
        fault_seed,
        fault_class,
        desc: format!(
            "gen_case(0x{seed:016x}, {size}): {shape:?} n={n} ops={} class={}",
            ops.len(),
            fault_class.name()
        ),
    }
}

/// Everything observable about one run, flattened for exact comparison.
#[derive(Debug, Clone, PartialEq)]
enum Obs {
    Ok {
        cycles: u64,
        results: String,
        stats: String,
        trace: Option<String>,
        mem: Memory,
    },
    Err(String),
}

fn run_case(
    case: &GenCase,
    comp: &muir_core::compiled::CompiledAccel,
    scheduler: SchedulerKind,
    threads: u32,
    exec: ExecMode,
    faults: &FaultPlan,
    tracing: bool,
) -> Obs {
    let cfg = SimConfig {
        faults: faults.clone(),
        trace: if tracing {
            TraceConfig::on()
        } else {
            TraceConfig::default()
        },
        ..case.cfg.clone()
    }
    .with_scheduler(scheduler)
    .with_threads(threads)
    .with_exec(exec);
    let mut mem = case.fresh_memory();
    match muir_sim::simulate_compiled(comp, &mut mem, &[], &cfg) {
        Ok(r) => Obs::Ok {
            cycles: r.cycles,
            results: format!("{:?}", r.results),
            stats: crate::sched::stats_fingerprint(&r.stats),
            trace: r.trace.map(|t| t.to_chrome_json()),
            mem,
        },
        Err(e) => Obs::Err(e.to_string()),
    }
}

/// Differentially check one generated case under every scheduler and
/// stress mode.
///
/// # Errors
/// The first divergence (or reference mismatch), naming the failing
/// configuration and the case's reproduction line.
pub fn check_case(case: &GenCase) -> Result<(), String> {
    let acc = case.build();
    // Compile once for all 27 scheduler/exec/mode/thread configurations below.
    // A graph the verifier rejects is a generator bug, reported the same
    // way a failing dense run was before sealing existed.
    let comp = muir_core::compiled::CompiledAccel::compile_cached(&acc).map_err(|e| {
        format!(
            "{} [plain]: dense run failed: {}",
            case.desc,
            muir_sim::SimError::GraphRejected { source: e }
        )
    })?;
    let mut ref_mem = case.fresh_memory();
    Interp::new(&case.module)
        .run_main(&mut ref_mem, &[])
        .map_err(|e| format!("{}: reference interpreter: {e}", case.desc))?;

    let none = FaultPlan::none();
    let fault_plan = FaultPlan::single(case.fault_class, case.fault_seed);
    let modes: [(&str, &FaultPlan, bool); 3] = [
        ("plain", &none, false),
        ("traced", &none, true),
        ("faulted", &fault_plan, false),
    ];
    for (mode, faults, tracing) in modes {
        // The oracle: dense scheduler, interpreted firing path.
        let dense = run_case(
            case,
            &comp,
            SchedulerKind::Dense,
            1,
            ExecMode::Interp,
            faults,
            tracing,
        );
        // Fault-free completions must match the interpreter word for word.
        if let Obs::Ok { mem, .. } = &dense {
            if faults.specs.is_empty() && mem.read_i64(case.out) != ref_mem.read_i64(case.out) {
                return Err(format!(
                    "{} [{mode}]: dense run diverged from the reference interpreter",
                    case.desc
                ));
            }
        }
        // A fault-free generated case must complete: a hang here is a
        // generator or engine bug, not an acceptable outcome. (Fault modes
        // may legitimately hang or raise a typed fault — the only demand
        // there is that every scheduler fails identically.)
        if faults.specs.is_empty() {
            if let Obs::Err(e) = &dense {
                return Err(format!("{} [{mode}]: dense run failed: {e}", case.desc));
            }
        }
        // Every other scheduler × exec combination must match the oracle
        // bit for bit: both firing interpreters under both single-thread
        // schedulers, the interpreted parallel path, and the micro-op
        // parallel path (which engages epoch commit) at every thread count.
        let covers: [(&str, SchedulerKind, u32, ExecMode); 4] = [
            ("dense+uop", SchedulerKind::Dense, 1, ExecMode::MicroOp),
            ("ready+interp", SchedulerKind::Ready, 1, ExecMode::Interp),
            ("ready+uop", SchedulerKind::Ready, 1, ExecMode::MicroOp),
            (
                "parallel+interp@2",
                SchedulerKind::Parallel,
                2,
                ExecMode::Interp,
            ),
        ];
        for (label, scheduler, threads, exec) in covers {
            let other = run_case(case, &comp, scheduler, threads, exec, faults, tracing);
            if dense != other {
                return Err(format!(
                    "{} [{mode}]: {label} diverged from dense",
                    case.desc
                ));
            }
        }
        for threads in [1u32, 2, 4, 8] {
            let par = run_case(
                case,
                &comp,
                SchedulerKind::Parallel,
                threads,
                ExecMode::MicroOp,
                faults,
                tracing,
            );
            if dense != par {
                return Err(format!(
                    "{} [{mode}]: parallel+uop@{threads} diverged from dense",
                    case.desc
                ));
            }
        }
    }
    Ok(())
}

/// Fuzz `count` cases derived from `seed0`, with shrink-by-seed reporting:
/// a failing case is re-checked at smaller sizes and the smallest failing
/// `(seed, size)` is reported first.
///
/// # Errors
/// The first failing case, with its reproduction line and shrink result.
pub fn run_seeds(seed0: u64, count: u64) -> Result<(), String> {
    for i in 0..count {
        let seed = SplitMix64::salted(seed0, i).next_u64();
        let case = gen_case(seed, 2);
        let Err(full) = check_case(&case) else {
            continue;
        };
        // Shrink by seed: the same seed at smaller size knobs.
        for size in 0..2u8 {
            let small = gen_case(seed, size);
            if let Err(e) = check_case(&small) {
                return Err(format!(
                    "fuzz case {i} failed; shrunk to size {size}: {e}\n  \
                     reproduce with: check_case(&gen_case(0x{seed:016x}, {size}))"
                ));
            }
        }
        return Err(format!(
            "fuzz case {i} failed (did not shrink): {full}\n  \
             reproduce with: check_case(&gen_case(0x{seed:016x}, 2))"
        ));
    }
    Ok(())
}

/// One tensor-graph fuzz case: a constructively valid graph from
/// `muir_frontend::tensor::gen_graph`, lowered through the tile
/// intrinsics, with seed-derived f32 inputs. Reproducible from
/// `(seed, size)` exactly like [`GenCase`].
pub struct TensorCase {
    /// The generating seed.
    pub seed: u64,
    /// The size knob (0 = smallest).
    pub size: u8,
    /// The source graph.
    pub graph: muir_frontend::tensor::TensorGraph,
    /// Its lowering (module + memory-object map).
    pub lowered: muir_frontend::tensor::LoweredGraph,
    /// Input object contents, in graph-input order.
    pub inits: Vec<(MemObjId, Vec<f32>)>,
    /// Simulation dimensions shared by every run of the case.
    pub cfg: SimConfig,
    /// Human-readable summary for failure reports.
    pub desc: String,
}

impl TensorCase {
    /// Fresh memory with the case's inputs loaded.
    pub fn fresh_memory(&self) -> Memory {
        let mut mem = Memory::from_module(&self.lowered.module);
        for (obj, data) in &self.inits {
            mem.init_f32(*obj, data);
        }
        mem
    }
}

/// Derive a tensor-graph case from `(seed, size)`.
pub fn gen_tensor_case(seed: u64, size: u8) -> TensorCase {
    use muir_frontend::tensor::{gen_graph, TensorLowerConfig};
    let graph = gen_graph(seed, size as usize);
    let lowered = graph
        .lower(&TensorLowerConfig::default())
        .expect("generated graphs lower");
    let mut rng = SplitMix64::salted(seed, 0x7e50);
    let inits: Vec<(MemObjId, Vec<f32>)> = lowered
        .inputs
        .iter()
        .zip(&graph.inputs)
        .map(|(obj, gi)| {
            let data: Vec<f32> = (0..gi.dims.elems())
                .map(|_| (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0)
                .collect();
            (*obj, data)
        })
        .collect();
    let cfg = SimConfig {
        max_cycles: 20_000_000,
        deadlock_cycles: 50_000,
        databox_entries: 1 + rng.below(8) as u32,
        elastic_depth: 1 + rng.below(8) as u32,
        window: 2 + rng.below(63),
        ..SimConfig::default()
    };
    let desc = format!(
        "gen_tensor_case(0x{seed:016x}, {size}): {} inputs, {} nodes, {} fused",
        graph.inputs.len(),
        graph.nodes.len(),
        lowered.fused_relus
    );
    TensorCase {
        seed,
        size,
        graph,
        lowered,
        inits,
        cfg,
        desc,
    }
}

fn run_tensor(
    case: &TensorCase,
    comp: &muir_core::compiled::CompiledAccel,
    scheduler: SchedulerKind,
    threads: u32,
    exec: ExecMode,
    tracing: bool,
) -> Obs {
    let cfg = SimConfig {
        trace: if tracing {
            TraceConfig::on()
        } else {
            TraceConfig::default()
        },
        ..case.cfg.clone()
    }
    .with_scheduler(scheduler)
    .with_threads(threads)
    .with_exec(exec);
    let mut mem = case.fresh_memory();
    match muir_sim::simulate_compiled(comp, &mut mem, &[], &cfg) {
        Ok(r) => Obs::Ok {
            cycles: r.cycles,
            results: format!("{:?}", r.results),
            stats: crate::sched::stats_fingerprint(&r.stats),
            trace: r.trace.map(|t| t.to_chrome_json()),
            mem,
        },
        Err(e) => Obs::Err(e.to_string()),
    }
}

/// Differentially check one tensor-graph case: the graph-level
/// evaluator, the `muir-mir` interpreter over the lowered module, and
/// every scheduler × firing-interpreter combination must agree (the
/// simulator matrix bit for bit, the two reference layers to float
/// tolerance — chunked dot products reassociate).
///
/// # Errors
/// The first divergence, naming the failing configuration and the
/// case's reproduction line.
pub fn check_tensor_case(case: &TensorCase) -> Result<(), String> {
    // Layer 1: graph evaluator vs lowered-module interpreter.
    let inputs: Vec<Vec<f32>> = case.inits.iter().map(|(_, d)| d.clone()).collect();
    let want = case
        .graph
        .eval(&inputs)
        .map_err(|e| format!("{}: graph eval: {e}", case.desc))?;
    let mut ref_mem = case.fresh_memory();
    Interp::new(&case.lowered.module)
        .run_main(&mut ref_mem, &[])
        .map_err(|e| format!("{}: reference interpreter: {e}", case.desc))?;
    let got = ref_mem.read_f32(case.lowered.output);
    if want.len() != got.len() {
        return Err(format!(
            "{}: output length {} vs {}",
            case.desc,
            want.len(),
            got.len()
        ));
    }
    for (i, (x, y)) in want.iter().zip(&got).enumerate() {
        let scale = x.abs().max(y.abs()).max(1.0);
        if (x - y).abs() > 1e-4 * scale {
            return Err(format!(
                "{}: lowering diverged from graph eval at [{i}]: {x} vs {y}",
                case.desc
            ));
        }
    }
    // Layer 2: the simulator matrix, bit-identical to the dense oracle.
    let acc = translate(&case.lowered.module, &FrontendConfig::default())
        .map_err(|e| format!("{}: translate: {e}", case.desc))?;
    let comp = muir_core::compiled::CompiledAccel::compile_cached(&acc)
        .map_err(|e| format!("{}: compile: {e}", case.desc))?;
    for tracing in [false, true] {
        let mode = if tracing { "traced" } else { "plain" };
        let dense = run_tensor(
            case,
            &comp,
            SchedulerKind::Dense,
            1,
            ExecMode::Interp,
            tracing,
        );
        if let Obs::Err(e) = &dense {
            return Err(format!("{} [{mode}]: dense run failed: {e}", case.desc));
        }
        if let Obs::Ok { mem, .. } = &dense {
            let sim = mem.read_f32(case.lowered.output);
            for (i, (x, y)) in got.iter().zip(&sim).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!(
                        "{} [{mode}]: sim diverged from interpreter at [{i}]: {x} vs {y}",
                        case.desc
                    ));
                }
            }
        }
        let covers: [(&str, SchedulerKind, u32, ExecMode); 6] = [
            ("dense+uop", SchedulerKind::Dense, 1, ExecMode::MicroOp),
            ("ready+interp", SchedulerKind::Ready, 1, ExecMode::Interp),
            ("ready+uop", SchedulerKind::Ready, 1, ExecMode::MicroOp),
            (
                "parallel+interp@2",
                SchedulerKind::Parallel,
                2,
                ExecMode::Interp,
            ),
            (
                "parallel+uop@2",
                SchedulerKind::Parallel,
                2,
                ExecMode::MicroOp,
            ),
            (
                "parallel+uop@8",
                SchedulerKind::Parallel,
                8,
                ExecMode::MicroOp,
            ),
        ];
        for (label, scheduler, threads, exec) in covers {
            let other = run_tensor(case, &comp, scheduler, threads, exec, tracing);
            if dense != other {
                return Err(format!(
                    "{} [{mode}]: {label} diverged from dense",
                    case.desc
                ));
            }
        }
    }
    Ok(())
}

/// Fuzz `count` tensor-graph cases derived from `seed0`, with the same
/// shrink-by-seed reporting as [`run_seeds`].
///
/// # Errors
/// The first failing case, with its reproduction line and shrink result.
pub fn run_tensor_seeds(seed0: u64, count: u64) -> Result<(), String> {
    for i in 0..count {
        let seed = SplitMix64::salted(seed0 ^ 0x7e50, i).next_u64();
        let case = gen_tensor_case(seed, 2);
        let Err(full) = check_tensor_case(&case) else {
            continue;
        };
        for size in 0..2u8 {
            let small = gen_tensor_case(seed, size);
            if let Err(e) = check_tensor_case(&small) {
                return Err(format!(
                    "tensor fuzz case {i} failed; shrunk to size {size}: {e}\n  \
                     reproduce with: check_tensor_case(&gen_tensor_case(0x{seed:016x}, {size}))"
                ));
            }
        }
        return Err(format!(
            "tensor fuzz case {i} failed (did not shrink): {full}\n  \
             reproduce with: check_tensor_case(&gen_tensor_case(0x{seed:016x}, 2))"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_are_reproducible() {
        for seed in [1u64, 0xdead_beef, 0x1234_5678_9abc_def0] {
            let a = gen_case(seed, 2);
            let b = gen_case(seed, 2);
            assert_eq!(a.desc, b.desc);
            assert_eq!(a.init.1, b.init.1);
            assert_eq!(a.cfg.window, b.cfg.window);
            assert_eq!(a.fault_seed, b.fault_seed);
        }
    }

    #[test]
    fn generated_cases_are_verifier_clean() {
        for i in 0..12u64 {
            let seed = SplitMix64::salted(0x5eed, i).next_u64();
            for size in 0..=2u8 {
                let case = gen_case(seed, size);
                let acc = case.build();
                muir_core::verify::verify_accelerator(&acc)
                    .unwrap_or_else(|e| panic!("{}: verifier rejected: {e}", case.desc));
            }
        }
    }

    #[test]
    fn fuzz_smoke_small() {
        // A handful of full differential cases; the big corpus lives in
        // `tests/scheduler_diff.rs` and the `experiments fuzz` gate.
        run_seeds(0x0ace, 6).unwrap();
    }

    #[test]
    fn tensor_cases_are_reproducible() {
        for seed in [1u64, 0xdead_beef, 0x7e50_7e50] {
            let a = gen_tensor_case(seed, 2);
            let b = gen_tensor_case(seed, 2);
            assert_eq!(a.desc, b.desc);
            assert_eq!(a.graph.content_hash(), b.graph.content_hash());
            assert_eq!(a.inits, b.inits);
            assert_eq!(a.cfg.window, b.cfg.window);
        }
    }

    #[test]
    fn tensor_fuzz_smoke_small() {
        run_tensor_seeds(0x7e50, 3).unwrap();
    }
}
