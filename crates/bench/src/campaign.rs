//! Differential fault campaign: inject one fault class at a time into a
//! workload's simulation and cross-check the outcome against the `muir-mir`
//! reference interpreter.
//!
//! Every completed run is diffed word-for-word against the reference, so
//! each injected fault lands in exactly one bucket:
//!
//! * **detected** — the simulator raised a typed [`SimError`] (fault,
//!   eval error) naming the failure site;
//! * **hung** — the run tripped the deadlock watchdog or the cycle limit
//!   (the diagnosis reports the blocked channels / outstanding memory);
//! * **masked** — the run completed and the outputs still match the
//!   reference (e.g. a corrected ECC event, a flipped bit on a dead path);
//! * **silently corrupted** — the run completed with wrong outputs. The
//!   error taxonomy guarantees these are never *invisible*: the run's
//!   [`muir_sim::FaultCounts`] flag the injection, and the campaign
//!   asserts that flag survived.
//!
//! The campaign is deterministic: the per-case seed is a hash of the
//! workload name, fault class, and replica index, so the same invocation
//! always reproduces the same report — rerun any cell to replay its fault.

use std::fmt;

use muir_sim::{simulate, FaultClass, FaultPlan, FaultSpec, SimConfig, SimError};
use muir_workloads::by_name;

/// How a single injected-fault run ended, relative to the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Run completed, outputs match the reference.
    Masked,
    /// Simulator raised a typed error naming the fault.
    Detected,
    /// Deadlock watchdog or cycle limit fired.
    Hung,
    /// Run completed with outputs diverging from the reference.
    SilentCorruption,
}

impl Outcome {
    /// Stable column label.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Detected => "detected",
            Outcome::Hung => "hung",
            Outcome::SilentCorruption => "silent-corruption",
        }
    }
}

/// One (workload, class, replica) cell of the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseResult {
    /// Workload name.
    pub workload: String,
    /// Injected class.
    pub class: FaultClass,
    /// The derived per-case seed (replayable).
    pub seed: u64,
    /// Outcome bucket.
    pub outcome: Outcome,
    /// Stable error code when the run errored.
    pub code: Option<&'static str>,
    /// Full human-readable error text when the run errored. For a
    /// `GraphRejected` case this carries the verifier's actual finding
    /// (site + message), not just the `E-SIM-GRAPH` bucket — the code is
    /// for counting, the detail is for debugging the cell.
    pub detail: Option<String>,
    /// Faults the simulator recorded injecting.
    pub injected: u64,
    /// Whether the run's stats flagged the injection (always true for a
    /// silently corrupted completion — checked by the campaign).
    pub flagged: bool,
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Every cell, in deterministic (workload, class, replica) order.
    pub cases: Vec<CaseResult>,
}

impl CampaignReport {
    /// Count of cases with `outcome` for `class`.
    pub fn count(&self, class: FaultClass, outcome: Outcome) -> usize {
        self.cases
            .iter()
            .filter(|c| c.class == class && c.outcome == outcome)
            .count()
    }

    /// Cases where an injection happened at all (the denominator for
    /// coverage: a zero-injection run says nothing about detection).
    pub fn injected_cases(&self, class: FaultClass) -> usize {
        self.cases
            .iter()
            .filter(|c| c.class == class && c.injected > 0)
            .count()
    }

    /// Silently corrupted completions whose stats did NOT flag the fault —
    /// the one thing the taxonomy promises can never happen.
    pub fn unflagged_corruptions(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.outcome == Outcome::SilentCorruption && !c.flagged)
            .count()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>9} {:>9} {:>6} {:>7} {:>18}",
            "fault class", "injected", "detected", "hung", "masked", "silent-corruption"
        )?;
        for &class in &FaultClass::ALL {
            let total: usize = self.cases.iter().filter(|c| c.class == class).count();
            if total == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<16} {:>9} {:>9} {:>6} {:>7} {:>18}",
                class.name(),
                self.injected_cases(class),
                self.count(class, Outcome::Detected),
                self.count(class, Outcome::Hung),
                self.count(class, Outcome::Masked),
                self.count(class, Outcome::SilentCorruption),
            )?;
        }
        let unflagged = self.unflagged_corruptions();
        writeln!(
            f,
            "{} cases; unflagged silent corruptions: {} (must be 0)",
            self.cases.len(),
            unflagged
        )
    }
}

/// FNV-1a over the case coordinates: deterministic, platform-independent
/// per-case seeds without any global RNG.
fn case_seed(workload: &str, class: FaultClass, replica: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in workload
        .bytes()
        .chain(class.name().bytes())
        .chain(replica.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run one injected-fault case and classify it against the reference.
///
/// # Panics
/// Panics if the workload name is unknown or the fault-free reference
/// itself fails (campaign preconditions, not fault outcomes).
pub fn run_case(workload: &str, class: FaultClass, seed: u64) -> CaseResult {
    let w = by_name(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
    let ref_mem = w
        .run_reference()
        .unwrap_or_else(|e| panic!("{workload}: reference: {e}"));
    let acc = crate::baseline(&w);
    let mut mem = w.fresh_memory();
    let cfg = case_cfg(class, seed);
    let r = simulate(&acc, &mut mem, &[], &cfg);
    classify(
        workload,
        class,
        seed,
        &w,
        &ref_mem,
        r.map(|r| r.stats.faults_injected()),
        &mem,
    )
}

/// The per-case simulation configuration: one seeded single-event fault.
fn case_cfg(class: FaultClass, seed: u64) -> SimConfig {
    SimConfig {
        // Tight enough that a timed-out response hangs quickly, loose
        // enough that no fault-free workload trips it.
        max_cycles: 2_000_000,
        deadlock_cycles: 10_000,
        faults: FaultPlan {
            seed,
            specs: vec![FaultSpec {
                class,
                rate_ppm: 20_000,
                max_events: 1,
            }],
        },
        ..SimConfig::default()
    }
}

/// Bucket one finished run against the reference (shared by the
/// sequential and batched campaign paths).
fn classify(
    workload: &str,
    class: FaultClass,
    seed: u64,
    w: &muir_workloads::Workload,
    ref_mem: &muir_mir::interp::Memory,
    result: Result<u64, SimError>,
    mem: &muir_mir::interp::Memory,
) -> CaseResult {
    let (outcome, code, detail, injected, flagged) = match result {
        Ok(injected) => {
            if w.outputs_match(ref_mem, mem) {
                (Outcome::Masked, None, None, injected, injected > 0)
            } else {
                (
                    Outcome::SilentCorruption,
                    None,
                    None,
                    injected,
                    injected > 0,
                )
            }
        }
        Err(e @ (SimError::Deadlock { .. } | SimError::CycleLimitExhausted { .. })) => {
            (Outcome::Hung, Some(e.code()), Some(e.to_string()), 1, true)
        }
        Err(e) => (
            Outcome::Detected,
            Some(e.code()),
            Some(e.to_string()),
            1,
            true,
        ),
    };
    CaseResult {
        workload: workload.to_string(),
        class,
        seed,
        outcome,
        code,
        detail,
        injected,
        flagged,
    }
}

/// Run the full campaign: `replicas` seeded runs of every fault class on
/// every named workload. Same arguments → byte-identical report.
///
/// # Panics
/// Panics on unknown workload names or reference failures.
pub fn run_campaign(workloads: &[&str], classes: &[FaultClass], replicas: u32) -> CampaignReport {
    let mut report = CampaignReport::default();
    for &name in workloads {
        for &class in classes {
            for replica in 0..replicas {
                let seed = case_seed(name, class, replica);
                let case = run_case(name, class, seed);
                assert!(
                    case.outcome != Outcome::SilentCorruption || case.flagged,
                    "{name}/{}/{replica}: corrupted completion without a fault flag",
                    class.name()
                );
                report.cases.push(case);
            }
        }
    }
    report
}

/// [`run_campaign`] with the cases of each workload batched through
/// [`muir_sim::simulate_batch`] on `threads` worker threads. The report
/// is byte-identical to the sequential campaign's — each case is an
/// independent simulation with its own seed, memory image, and
/// configuration, so only wall time changes.
///
/// # Panics
/// Panics on unknown workload names or reference failures.
pub fn run_campaign_with_threads(
    workloads: &[&str],
    classes: &[FaultClass],
    replicas: u32,
    threads: usize,
) -> CampaignReport {
    let mut report = CampaignReport::default();
    for &name in workloads {
        let w = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        let ref_mem = w
            .run_reference()
            .unwrap_or_else(|e| panic!("{name}: reference: {e}"));
        let acc = crate::baseline(&w);
        // Same (class, replica) order as the sequential triple loop.
        let coords: Vec<(FaultClass, u64)> = classes
            .iter()
            .flat_map(|&class| (0..replicas).map(move |r| (class, case_seed(name, class, r))))
            .collect();
        let jobs: Vec<muir_sim::BatchJob> = coords
            .iter()
            .map(|&(class, seed)| muir_sim::BatchJob {
                args: Vec::new(),
                mem: w.fresh_memory(),
                cfg: case_cfg(class, seed),
            })
            .collect();
        let runs = muir_sim::simulate_batch(&acc, jobs, threads);
        for (&(class, seed), run) in coords.iter().zip(runs) {
            let case = classify(
                name,
                class,
                seed,
                &w,
                &ref_mem,
                run.outcome.map(|r| r.stats.faults_injected()),
                &run.mem,
            );
            assert!(
                case.outcome != Outcome::SilentCorruption || case.flagged,
                "{name}/{}: corrupted completion without a fault flag",
                class.name()
            );
            report.cases.push(case);
        }
    }
    report
}

/// The default campaign of `experiments faults`: three workloads spanning
/// the scratchpad (SAXPY), cache (GEMM), and stencil-halo (STENCIL)
/// memory systems, all six fault classes, three replicas each — batched
/// across the host's cores.
pub fn default_campaign() -> CampaignReport {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    run_campaign_with_threads(&["SAXPY", "GEMM", "STENCIL"], &FaultClass::ALL, 3, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let wl = ["SAXPY"];
        let classes = [FaultClass::TokenDrop, FaultClass::MemEcc];
        let a = run_campaign(&wl, &classes, 2);
        let b = run_campaign(&wl, &classes, 2);
        assert_eq!(a, b, "same arguments must reproduce the same report");
        assert_eq!(a.cases.len(), 4);
    }

    #[test]
    fn case_seeds_differ_across_coordinates() {
        let s1 = case_seed("GEMM", FaultClass::TokenDrop, 0);
        let s2 = case_seed("GEMM", FaultClass::TokenDrop, 1);
        let s3 = case_seed("GEMM", FaultClass::TokenDup, 0);
        let s4 = case_seed("SAXPY", FaultClass::TokenDrop, 0);
        let all = [s1, s2, s3, s4];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn corrupted_completions_are_always_flagged() {
        let r = run_campaign(&["SAXPY"], &[FaultClass::TokenBitFlip], 4);
        assert_eq!(r.unflagged_corruptions(), 0);
    }

    #[test]
    fn batched_campaign_matches_sequential() {
        let wl = ["SAXPY", "GEMM"];
        let classes = [FaultClass::TokenDrop, FaultClass::MemEcc];
        let sequential = run_campaign(&wl, &classes, 2);
        for threads in [1usize, 4] {
            let batched = run_campaign_with_threads(&wl, &classes, 2, threads);
            assert_eq!(
                sequential, batched,
                "batched campaign at {threads} threads diverged"
            );
        }
    }
}
