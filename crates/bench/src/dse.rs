//! Seeded, deterministic design-space exploration (ROADMAP item 3).
//!
//! PR 2's bottleneck reports close the optimization loop by hand: they
//! name the μopt pass that fixes each stall and a human applies it. This
//! module closes it automatically. [`explore`] samples the enumerable
//! μopt knob surface ([`muir_uopt::config::PassSpace`]) with a seeded
//! rng, lowers every candidate to a sealed artifact, evaluates all of
//! them through the fault-tolerant [`EvalService`] (so dedup, the
//! persistent store, and batching carry real traffic), scores each point
//! as *(simulated cycles, FPGA area score)* via [`muir_rtl::cost`], and
//! reports the cycles-vs-area Pareto front per workload.
//!
//! # Determinism contract
//!
//! Same `(seed, budget)` ⇒ byte-identical `DSE_report.json`, at any
//! worker-thread count and regardless of store temperature. Three design
//! rules carry the property:
//!
//! 1. **sampling is pure** — candidate indices come from
//!    [`PassSpace::sample_indices`] seeded by `(seed, hash(workload))`,
//!    independent of evaluation order or timing;
//! 2. **evaluation is bit-reproducible** — the simulator's scheduler
//!    contract (DESIGN.md §9–§10) makes every candidate's cycles and end
//!    state identical across thread counts, and the store returns exactly
//!    what a fresh simulation would compute (DESIGN.md §13);
//! 3. **the report carries no timing** — wall-clock, store temperature
//!    (`from_store`), and retry counts live in [`DseStats`] (printed to
//!    stdout, never serialized into the report).
//!
//! Candidates dedup at two levels: distinct configs that lower to the
//! same artifact share one [`EvalService`] (artifact-level dedup), and
//! their identical jobs coalesce inside the service (job-level dedup) —
//! a `budget`-point sweep typically simulates far fewer than `budget`
//! designs.

use crate::profile::{parse_json, Json};
use crate::service::{EvalJob, EvalOutcome, EvalService, ServiceConfig};
use muir_core::compiled::CompiledAccel;
use muir_core::telemetry;
use muir_core::ContentHasher;
use muir_rtl::cost::{estimate, Tech};
use muir_sim::SimConfig;
use muir_store::Store;
use muir_uopt::config::{PassConfig, PassSpace};
use muir_workloads::Workload;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Search parameters — everything the report's bytes may depend on.
#[derive(Debug, Clone)]
pub struct DseParams {
    /// Sampling seed.
    pub seed: u64,
    /// Candidates per workload (clamped to the space size, ≥ 1; the
    /// all-baseline config is always candidate 0).
    pub budget: u64,
    /// Worker threads for batched simulation. Affects wall time only —
    /// never report bytes (determinism contract rule 2).
    pub threads: usize,
}

impl Default for DseParams {
    fn default() -> Self {
        DseParams {
            seed: 0xd5e,
            budget: 24,
            threads: 1,
        }
    }
}

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Mixed-radix index into the knob space.
    pub index: u64,
    /// The knob assignment.
    pub config: PassConfig,
    /// [`PassConfig::config_hash`] of the assignment.
    pub config_hash: u64,
    /// Content hash of the sealed artifact this config lowered to.
    pub artifact: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// [`muir_rtl::cost::CostEstimate::area_score`] of the artifact.
    pub area_score: u64,
    /// Estimated FPGA clock (MHz).
    pub fmax_mhz: f64,
    /// Estimated power (mW).
    pub power_mw: f64,
    /// End-state content hash (outcome + final memory) — what the
    /// candidate-honesty differential compares against a cold re-run.
    pub end_state: u64,
    /// Whether some evaluated candidate strictly dominates this point.
    pub dominated: bool,
}

/// The exploration result for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadFront {
    /// Workload name.
    pub name: String,
    /// Every evaluated candidate, ascending by `index`.
    pub candidates: Vec<Candidate>,
    /// The Pareto front over `(cycles, area_score)`, ascending by cycles
    /// (hence strictly descending by area), duplicate-free.
    pub front: Vec<(u64, u64)>,
}

/// Execution counters for one [`explore`] call. Deliberately outside the
/// report: these vary with store temperature; report bytes must not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Candidates evaluated (== sampled budget after clamping).
    pub candidates: u64,
    /// Distinct artifacts after config→artifact dedup.
    pub artifacts: u64,
    /// Evaluations served by the persistent store.
    pub store_hits: u64,
    /// Submissions coalesced onto an identical pending job.
    pub coalesced: u64,
    /// Evaluations actually simulated.
    pub recomputed: u64,
    /// Typed store errors degraded to warnings.
    pub store_warnings: u64,
}

/// Measured half of a [`Candidate`], filled in as artifact groups drain.
#[derive(Debug, Clone, Copy)]
struct Measured {
    cycles: u64,
    area_score: u64,
    end_state: u64,
    fmax_mhz: f64,
    power_mw: f64,
}

/// Weak Pareto dominance with at least one strict axis: `a` dominates
/// `b` iff `a` is no worse on both axes and better on one.
pub fn dominates(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// The Pareto front of a point set: the distinct points no other point
/// dominates, ascending by cycles. Distinctness first means duplicated
/// optima appear once; on the returned front cycles strictly increase
/// and area scores strictly decrease (two front points can never share
/// either coordinate — the shared-coordinate one would be dominated).
pub fn pareto_front(points: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let distinct: std::collections::BTreeSet<(u64, u64)> = points.iter().copied().collect();
    distinct
        .iter()
        .copied()
        .filter(|&p| !distinct.iter().any(|&q| dominates(q, p)))
        .collect()
}

/// Salt [`PassSpace::sample_indices`] per workload so every workload
/// explores its own region of the space under one user-facing seed.
fn workload_salt(name: &str) -> u64 {
    let mut h = ContentHasher::new();
    h.push_str("dse-workload-salt-v1");
    h.push_str(name);
    h.finish()
}

/// Explore one workload: sample, lower, evaluate, score, rank.
///
/// `store_root`, when given, backs every evaluation with the persistent
/// result store (opened per artifact group; a warm root serves the whole
/// sweep from disk). The report content is identical either way.
///
/// # Panics
/// Panics if a candidate fails to lower, fails to simulate, or computes
/// outputs that diverge from the workload's reference interpreter — a
/// DSE sweep must never trade correctness for cycles.
pub fn explore(
    w: &Workload,
    params: &DseParams,
    store_root: Option<&Path>,
) -> (WorkloadFront, DseStats) {
    let _span = telemetry::span_with("dse", "dse.workload", w.name.to_string());
    let space = PassSpace::full();
    let indices = {
        let _s = telemetry::span("dse", "dse.sample");
        space.sample_indices(params.seed ^ workload_salt(w.name), params.budget)
    };
    telemetry::count("dse.candidates", indices.len() as u64);

    // Lower every sampled config to a sealed artifact and group the
    // candidates by artifact content hash (BTreeMap: deterministic
    // evaluation order). Configs whose passes are no-ops on this
    // workload collapse onto the baseline artifact here.
    let mut groups: BTreeMap<u64, (Arc<CompiledAccel>, Vec<usize>)> = BTreeMap::new();
    let mut lowered: Vec<(u64, PassConfig, u64)> = Vec::with_capacity(indices.len());
    {
        let _s = telemetry::span("dse", "dse.lower");
        for (slot, &i) in indices.iter().enumerate() {
            let cfg = space.nth(i);
            let (acc, _) = crate::optimized(w, &cfg.pipeline());
            let comp = CompiledAccel::compile_cached(&acc)
                .unwrap_or_else(|e| panic!("{} candidate {i}: {e}", w.name));
            let art = comp.content_hash();
            groups
                .entry(art)
                .or_insert_with(|| (comp, Vec::new()))
                .1
                .push(slot);
            lowered.push((i, cfg, art));
        }
    }

    // Evaluate one artifact group at a time through the service: one
    // identical job per member, so job-level coalescing and the store
    // probe both see real traffic.
    let ref_mem = w
        .run_reference()
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let mut stats = DseStats {
        candidates: indices.len() as u64,
        artifacts: groups.len() as u64,
        ..DseStats::default()
    };
    let mut evaluated: Vec<Option<Measured>> = vec![None; indices.len()];
    {
        let _s = telemetry::span("dse", "dse.evaluate");
        for (art, (comp, members)) in &groups {
            let cost = estimate(comp, Tech::FpgaArria10);
            let store = store_root.map(Store::open);
            let mut svc = EvalService::new(
                comp.clone(),
                store,
                ServiceConfig {
                    threads: params.threads,
                    ..ServiceConfig::default()
                },
            );
            for _ in members {
                svc.submit(EvalJob {
                    cfg: SimConfig::default(),
                    args: Vec::new(),
                    mem: w.fresh_memory(),
                });
            }
            let outcomes = svc.drain();
            let s = svc.stats();
            stats.store_hits += s.store_hits;
            stats.coalesced += s.coalesced;
            stats.recomputed += s.recomputed;
            stats.store_warnings += s.store_warnings;
            for (&slot, out) in members.iter().zip(&outcomes) {
                let (cycles, end_state) = record(w, *art, out, &ref_mem);
                evaluated[slot] = Some(Measured {
                    cycles,
                    area_score: cost.area_score(),
                    end_state,
                    fmax_mhz: cost.fmax_mhz,
                    power_mw: cost.power_mw,
                });
            }
        }
    }
    telemetry::count("dse.store_hits", stats.store_hits);

    // Rank: the front over all (cycles, area_score) pairs.
    let points: Vec<(u64, u64)> = evaluated
        .iter()
        .map(|e| {
            let e = e.expect("every slot evaluated");
            (e.cycles, e.area_score)
        })
        .collect();
    let front = pareto_front(&points);
    let candidates = lowered
        .into_iter()
        .zip(evaluated)
        .map(|((index, config, artifact), ev)| {
            let m = ev.expect("evaluated");
            Candidate {
                index,
                config_hash: config.config_hash(),
                config,
                artifact,
                cycles: m.cycles,
                area_score: m.area_score,
                fmax_mhz: m.fmax_mhz,
                power_mw: m.power_mw,
                end_state: m.end_state,
                dominated: !front.contains(&(m.cycles, m.area_score)),
            }
        })
        .collect();
    (
        WorkloadFront {
            name: w.name.to_string(),
            candidates,
            front,
        },
        stats,
    )
}

/// The workload the `conv1d_design_space` example explores: the tensor
/// window-convolution (Figure 2's "Opt 4 — higher-order Conv unit"
/// behaviour, fixed; the driver varies everything else around it).
pub const CONV1D_WORKLOAD: &str = "CONV[T]";
/// The example's pinned sampling seed.
pub const CONV1D_SEED: u64 = 0xd5e;
/// The example's pinned candidate budget — chosen so the sweep recovers
/// a 10-point Pareto front, which the regression test asserts exactly.
pub const CONV1D_BUDGET: u64 = 48;

/// The pinned conv1d design-space sweep. The example prints it; the
/// regression test asserts its front byte-for-byte; both stay in sync by
/// construction. Deterministic at any `threads`.
pub fn conv1d_sweep(threads: usize) -> (WorkloadFront, DseStats) {
    let w = muir_workloads::by_name(CONV1D_WORKLOAD).expect("CONV[T] is a suite workload");
    explore(
        &w,
        &DseParams {
            seed: CONV1D_SEED,
            budget: CONV1D_BUDGET,
            threads,
        },
        None,
    )
}

/// Unpack one service outcome into `(cycles, end_state)`, enforcing the
/// sweep's correctness gate against the reference interpreter.
fn record(
    w: &Workload,
    art: u64,
    out: &EvalOutcome,
    ref_mem: &muir_mir::interp::Memory,
) -> (u64, u64) {
    let r = match &out.outcome {
        Ok(r) => r,
        Err(e) => panic!("{} artifact {art:#x}: {e}", w.name),
    };
    assert!(
        w.outputs_match(ref_mem, &out.mem),
        "{} artifact {art:#x}: candidate outputs diverge from reference",
        w.name
    );
    (r.cycles, out.end_state())
}

fn hex(v: u64) -> String {
    format!("0x{v:016x}")
}

/// Serialize exploration results as the `DSE_report.json` document
/// (schema `muir-dse-v1`, validated by [`validate_dse_json`]). Purely a
/// function of its arguments — the determinism gate byte-compares this.
pub fn report_json(params: &DseParams, results: &[WorkloadFront]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"muir-dse-v1\",\n");
    out.push_str(&format!("  \"seed\": \"{}\",\n", hex(params.seed)));
    out.push_str(&format!("  \"budget\": {},\n", params.budget));
    out.push_str(&format!(
        "  \"space_size\": {},\n",
        PassSpace::full().size()
    ));
    out.push_str("  \"workloads\": [\n");
    for (wi, w) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {:?},\n", w.name));
        out.push_str("      \"candidates\": [\n");
        for (ci, c) in w.candidates.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"index\": {}, \"config\": {:?}, \"config_hash\": \"{}\", \
                 \"artifact\": \"{}\", \"cycles\": {}, \"area_score\": {}, \
                 \"fmax_mhz\": {:.1}, \"power_mw\": {:.1}, \"end_state\": \"{}\", \
                 \"dominated\": {}}}{}\n",
                c.index,
                c.config.to_string(),
                hex(c.config_hash),
                hex(c.artifact),
                c.cycles,
                c.area_score,
                c.fmax_mhz,
                c.power_mw,
                hex(c.end_state),
                c.dominated,
                if ci + 1 < w.candidates.len() { "," } else { "" },
            ));
        }
        out.push_str("      ],\n");
        out.push_str("      \"front\": [\n");
        for (fi, f) in w.front.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"cycles\": {}, \"area_score\": {}}}{}\n",
                f.0,
                f.1,
                if fi + 1 < w.front.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if wi + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// What [`validate_dse_json`] checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DseSummary {
    /// Workloads in the report.
    pub workloads: usize,
    /// Candidates across all workloads.
    pub candidates: usize,
    /// Front points across all workloads.
    pub front_points: usize,
    /// Workloads whose front has ≥ 3 points (the acceptance bar counts
    /// these).
    pub nontrivial_fronts: usize,
}

fn require_fields(obj: &Json, spec: &Json, what: &str) -> Result<(), String> {
    let Json::Obj(fields) = spec else {
        return Err(format!("schema `{what}` must be an object"));
    };
    for (key, ty) in fields {
        let want = ty.as_str().ok_or("schema types must be strings")?;
        let got = obj
            .get(key)
            .ok_or_else(|| format!("{what} missing `{key}`"))?;
        if got.type_name() != want {
            return Err(format!(
                "{what} `{key}`: expected {want}, got {}",
                got.type_name()
            ));
        }
    }
    Ok(())
}

fn as_pair(p: &Json, what: &str) -> Result<(u64, u64), String> {
    let num = |key: &str| -> Result<u64, String> {
        match p.get(key) {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
            _ => Err(format!("{what} `{key}` must be a non-negative integer")),
        }
    };
    Ok((num("cycles")?, num("area_score")?))
}

/// Validate a DSE report against the checked-in schema
/// (`scripts/dse_schema.json`) *and* the Pareto-front semantics: every
/// front point must be an undominated evaluated candidate, every
/// off-front candidate must be dominated by a front point, and the front
/// must be sorted and duplicate-free. The semantic half makes the gate a
/// differential check, not just a shape check.
///
/// # Errors
/// The first violation, with enough context to locate it.
pub fn validate_dse_json(report: &str, schema: &str) -> Result<DseSummary, String> {
    let schema = parse_json(schema).map_err(|e| format!("schema is not valid JSON: {e}"))?;
    let report = parse_json(report).map_err(|e| format!("report is not valid JSON: {e}"))?;

    let top = schema
        .get("top_required")
        .ok_or("schema missing `top_required`")?;
    require_fields(&report, top, "report")?;
    match report.get("schema").and_then(Json::as_str) {
        Some("muir-dse-v1") => {}
        other => return Err(format!("report schema tag {other:?}, want `muir-dse-v1`")),
    }

    let w_req = schema
        .get("workload_required")
        .ok_or("schema missing `workload_required`")?;
    let c_req = schema
        .get("candidate_required")
        .ok_or("schema missing `candidate_required`")?;
    let f_req = schema
        .get("front_required")
        .ok_or("schema missing `front_required`")?;

    let Some(Json::Arr(workloads)) = report.get("workloads") else {
        return Err("report `workloads` is not an array".to_string());
    };
    let mut summary = DseSummary {
        workloads: workloads.len(),
        ..DseSummary::default()
    };
    for w in workloads {
        require_fields(w, w_req, "workload")?;
        let name = w.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(Json::Arr(cands)) = w.get("candidates") else {
            return Err(format!("{name}: `candidates` is not an array"));
        };
        let Some(Json::Arr(front)) = w.get("front") else {
            return Err(format!("{name}: `front` is not an array"));
        };
        let mut points = Vec::with_capacity(cands.len());
        let mut flagged = Vec::with_capacity(cands.len());
        for (i, c) in cands.iter().enumerate() {
            require_fields(c, c_req, &format!("{name} candidate {i}"))?;
            points.push(as_pair(c, &format!("{name} candidate {i}"))?);
            flagged.push(matches!(c.get("dominated"), Some(Json::Bool(true))));
        }
        let mut fpts = Vec::with_capacity(front.len());
        for (i, f) in front.iter().enumerate() {
            require_fields(f, f_req, &format!("{name} front point {i}"))?;
            fpts.push(as_pair(f, &format!("{name} front point {i}"))?);
        }
        // Semantic gate: the declared front must BE the Pareto front of
        // the declared candidates, and the dominated flags must agree.
        let expect = pareto_front(&points);
        if fpts != expect {
            return Err(format!(
                "{name}: declared front {fpts:?} is not the Pareto front {expect:?} \
                 of the candidates"
            ));
        }
        for (i, (&p, &flag)) in points.iter().zip(&flagged).enumerate() {
            let on_front = expect.contains(&p);
            if on_front == flag {
                return Err(format!(
                    "{name} candidate {i}: dominated={flag} but point {p:?} is \
                     {}on the front",
                    if on_front { "" } else { "not " }
                ));
            }
        }
        summary.candidates += points.len();
        summary.front_points += fpts.len();
        if fpts.len() >= 3 {
            summary.nontrivial_fronts += 1;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_weak_with_a_strict_axis() {
        assert!(dominates((1, 1), (2, 2)));
        assert!(dominates((1, 2), (1, 3)));
        assert!(dominates((1, 2), (2, 2)));
        assert!(!dominates((1, 2), (1, 2)), "no self-domination");
        assert!(!dominates((1, 3), (2, 2)), "incomparable");
    }

    #[test]
    fn front_of_duplicates_is_a_single_point() {
        assert_eq!(pareto_front(&[(5, 5), (5, 5), (5, 5)]), vec![(5, 5)]);
    }

    /// The tensor-graph families must explore to non-trivial fronts: the
    /// default seed/budget yields at least 3 Pareto points for ATTN, and
    /// the same seed reproduces a byte-identical report at any thread
    /// count (determinism contract rule 2).
    #[test]
    fn attn_front_is_nontrivial_and_thread_independent() {
        let w = muir_workloads::by_name("ATTN").expect("ATTN in registry");
        let params = DseParams::default();
        let (front, stats) = explore(&w, &params, None);
        assert!(
            front.front.len() >= 3,
            "ATTN front has only {} point(s)",
            front.front.len()
        );
        assert_eq!(stats.candidates, params.budget);
        let (front2, _) = explore(
            &w,
            &DseParams {
                threads: 2,
                ..params.clone()
            },
            None,
        );
        let a = report_json(&params, &[front]);
        let b = report_json(&params, &[front2]);
        assert_eq!(a, b, "same-seed DSE report must be byte-identical");
    }

    #[test]
    fn front_is_sorted_and_mutually_incomparable() {
        let pts = [(10, 1), (1, 10), (5, 5), (6, 6), (10, 10), (1, 10)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![(1, 10), (5, 5), (10, 1)]);
        for w in front.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 > w[1].1);
        }
    }
}
