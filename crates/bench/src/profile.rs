//! The `bench profile <workload>` pipeline: run a workload with the
//! simulator's observability layer on, write the Chrome/Perfetto and VCD
//! artifacts, and print the profile + bottleneck report that tells the
//! user which μopt transform to reach for next.
//!
//! Also home to the golden-trace schema validator used by CI
//! (`experiments trace-schema`): a dependency-free JSON parser plus a
//! checked-in schema (`scripts/trace_schema.json`) that pins the
//! trace-event fields Perfetto needs, so an exporter regression fails the
//! build rather than silently producing an unloadable trace.

use crate::{baseline, full_stack, optimized};
use muir_sim::{simulate, BottleneckReport, SimConfig, SimProfile, Trace, TraceConfig};
use muir_workloads::by_name;

/// Everything `bench profile` produced for one workload.
pub struct ProfileArtifacts {
    /// Workload name (canonical, upper-case).
    pub workload: String,
    /// Cycles with tracing off.
    pub cycles_untraced: u64,
    /// Cycles with tracing on — must equal `cycles_untraced` exactly.
    pub cycles_traced: u64,
    /// Aggregated profile of the traced run.
    pub profile: SimProfile,
    /// Top-k critical resources with μopt suggestions.
    pub report: BottleneckReport,
    /// The raw trace (for exporting).
    pub trace: Trace,
    /// Instrumented dry-run of the paper's full μopt stack on this
    /// workload (per-pass wall time + graph deltas).
    pub pass_table: String,
    /// Cycles after applying that stack (what acting on the report buys).
    pub cycles_optimized: u64,
}

/// Profile `name`'s baseline accelerator: one untraced run (the timing
/// reference), one traced run (must match cycle-for-cycle), plus an
/// instrumented μopt dry-run for the "what next" comparison.
///
/// # Panics
/// Panics on an unknown workload, simulation failure, or — the
/// observability contract — if tracing perturbed the cycle count.
pub fn profile_workload(name: &str) -> ProfileArtifacts {
    let canonical = name.to_uppercase();
    let w = by_name(&canonical)
        .unwrap_or_else(|| panic!("unknown workload `{name}` (try e.g. GEMM, SAXPY, FFT)"));
    let acc = baseline(&w);

    let mut mem = w.fresh_memory();
    let untraced = simulate(&acc, &mut mem, &[], &SimConfig::default())
        .unwrap_or_else(|e| panic!("{canonical}: {e}"));

    let cfg = SimConfig {
        trace: TraceConfig::on(),
        ..SimConfig::default()
    };
    let mut mem = w.fresh_memory();
    let traced = simulate(&acc, &mut mem, &[], &cfg).unwrap_or_else(|e| panic!("{canonical}: {e}"));
    assert_eq!(
        untraced.cycles, traced.cycles,
        "{canonical}: tracing perturbed the simulation"
    );
    let profile = traced.profile.expect("tracing was enabled");
    let trace = traced.trace.expect("tracing was enabled");
    let report = profile.bottlenecks(5);

    let (opt_acc, pass_report) = optimized(&w, &full_stack(w.class));
    let mut mem = w.fresh_memory();
    let opt = simulate(&opt_acc, &mut mem, &[], &SimConfig::default())
        .unwrap_or_else(|e| panic!("{canonical}: {e}"));

    ProfileArtifacts {
        workload: canonical,
        cycles_untraced: untraced.cycles,
        cycles_traced: traced.cycles,
        profile,
        report,
        trace,
        pass_table: pass_report.render(),
        cycles_optimized: opt.cycles,
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (no external crates) + trace-schema validation
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Type name used by the schema (`"object"`, `"array"`, …).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one JSON document.
///
/// # Errors
/// A message naming the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Copy the full UTF-8 sequence starting at c.
                        let len = match c {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let chunk = b
                            .get(*pos..*pos + len)
                            .ok_or_else(|| "truncated utf-8".to_string())?;
                        s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                        *pos += len;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

/// What the validator checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationSummary {
    /// Trace events inspected.
    pub events: usize,
    /// Events per phase actually seen: (metadata, complete, counter).
    pub meta_events: usize,
    /// `ph:"X"` complete events.
    pub complete_events: usize,
    /// `ph:"C"` counter events.
    pub counter_events: usize,
}

/// Validate a Chrome trace JSON string against the checked-in schema
/// (itself JSON: `top_required` field→type for the top-level object and
/// `event_required` keyed by `ph`).
///
/// # Errors
/// The first schema violation, with enough context to locate the event.
pub fn validate_trace_json(trace: &str, schema: &str) -> Result<ValidationSummary, String> {
    let schema = parse_json(schema).map_err(|e| format!("schema is not valid JSON: {e}"))?;
    let trace = parse_json(trace).map_err(|e| format!("trace is not valid JSON: {e}"))?;

    let top_req = schema
        .get("top_required")
        .ok_or("schema missing `top_required`")?;
    let Json::Obj(top_fields) = top_req else {
        return Err("`top_required` must be an object".to_string());
    };
    for (key, ty) in top_fields {
        let want = ty.as_str().ok_or("schema types must be strings")?;
        let got = trace
            .get(key)
            .ok_or_else(|| format!("trace missing top-level `{key}`"))?;
        if got.type_name() != want {
            return Err(format!(
                "top-level `{key}`: expected {want}, got {}",
                got.type_name()
            ));
        }
    }

    let ev_req = schema
        .get("event_required")
        .ok_or("schema missing `event_required`")?;
    // Optional category allow-list: when the schema carries `cat_allowed`,
    // every event's `cat` (if present) must be a member.
    let cat_allowed: Option<Vec<&str>> = match schema.get("cat_allowed") {
        Some(Json::Arr(cats)) => Some(
            cats.iter()
                .map(|c| c.as_str().ok_or("`cat_allowed` entries must be strings"))
                .collect::<Result<_, _>>()?,
        ),
        Some(_) => return Err("`cat_allowed` must be an array".to_string()),
        None => None,
    };
    let Some(Json::Arr(events)) = trace.get("traceEvents") else {
        return Err("trace `traceEvents` is not an array".to_string());
    };
    let mut summary = ValidationSummary {
        events: events.len(),
        ..ValidationSummary::default()
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no string `ph`"))?;
        match ph {
            "M" => summary.meta_events += 1,
            "X" => summary.complete_events += 1,
            "C" => summary.counter_events += 1,
            _ => {}
        }
        let Some(Json::Obj(required)) = ev_req.get(ph) else {
            return Err(format!("event {i}: schema does not allow ph `{ph}`"));
        };
        for (key, ty) in required {
            let want = ty.as_str().ok_or("schema types must be strings")?;
            let got = ev
                .get(key)
                .ok_or_else(|| format!("event {i} (ph {ph}) missing `{key}`"))?;
            if got.type_name() != want {
                return Err(format!(
                    "event {i} (ph {ph}) `{key}`: expected {want}, got {}",
                    got.type_name()
                ));
            }
        }
        if let (Some(allowed), Some(cat)) = (&cat_allowed, ev.get("cat").and_then(Json::as_str)) {
            if !allowed.contains(&cat) {
                return Err(format!("event {i}: cat `{cat}` not in `cat_allowed`"));
            }
        }
    }
    Ok(summary)
}

/// A hermetic trace for the schema gate: a 16-element vector-double loop,
/// simulated with tracing on. Small enough for a debug-build CI step.
///
/// # Panics
/// Panics if the tiny module fails to translate or simulate (would mean
/// the simulator itself is broken — CI should fail loudly).
pub fn golden_trace_json() -> String {
    use muir_frontend::{translate, FrontendConfig};
    use muir_mir::instr::ValueRef;
    use muir_mir::interp::Memory;
    use muir_mir::types::ScalarType;
    use muir_mir::{FunctionBuilder, Module};

    let mut m = Module::new("golden");
    let a = m.add_mem_object("a", ScalarType::I32, 16);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(16), 1, |b, i| {
        let v = b.load(a, i);
        let w = b.add(v, v);
        b.store(a, i, w);
    });
    b.ret(None);
    m.add_function(b.finish());

    let acc = translate(&m, &FrontendConfig::default()).expect("golden module translates");
    let mut mem = Memory::from_module(&m);
    mem.init_i64(a, &[3; 16]);
    let cfg = SimConfig {
        trace: TraceConfig::on(),
        ..SimConfig::default()
    };
    let r = simulate(&acc, &mut mem, &[], &cfg).expect("golden module simulates");
    r.trace.expect("tracing was enabled").to_chrome_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_structures() {
        let j = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"d":true,"e":null}"#).unwrap();
        assert_eq!(j.get("d"), Some(&Json::Bool(true)));
        assert_eq!(j.get("e"), Some(&Json::Null));
        let Some(Json::Arr(a)) = j.get("a") else {
            panic!("a missing")
        };
        assert_eq!(a[2], Json::Num(-300.0));
        assert_eq!(
            j.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} extra").is_err());
    }

    #[test]
    fn golden_trace_validates_against_checked_in_schema() {
        let schema = include_str!("../../../scripts/trace_schema.json");
        let trace = golden_trace_json();
        let summary = validate_trace_json(&trace, schema).unwrap();
        assert!(summary.meta_events > 0, "{summary:?}");
        assert!(summary.complete_events > 0, "{summary:?}");
        assert!(summary.counter_events > 0, "{summary:?}");
    }

    #[test]
    fn gemm_profile_blames_the_memory_hotspot() {
        // The paper's running example: baseline GEMM is bound by its
        // single-banked cache, so the bottleneck report must rank that
        // structure first and point at the banking pass — and tracing must
        // not move the cycle count at all.
        let art = profile_workload("GEMM");
        assert_eq!(art.cycles_traced, art.cycles_untraced);
        let top = art.report.entries.first().expect("a bottleneck is found");
        assert_eq!(top.kind, muir_sim::BottleneckKind::Structure, "{top:?}");
        assert!(top.name.contains("l1"), "{}", top.name);
        assert!(
            top.suggestion.contains("CacheBanking"),
            "{}",
            top.suggestion
        );
        assert!(
            art.cycles_optimized < art.cycles_untraced,
            "acting on the report helps: {} -> {}",
            art.cycles_untraced,
            art.cycles_optimized
        );
    }

    #[test]
    fn validator_rejects_wrong_shapes() {
        let schema = include_str!("../../../scripts/trace_schema.json");
        let e = validate_trace_json(r#"{"traceEvents":[]}"#, schema).unwrap_err();
        assert!(e.contains("missing top-level"), "{e}");
        let e = validate_trace_json(
            r#"{"traceEvents":[{"ph":"Z"}],"displayTimeUnit":"ms","otherData":{}}"#,
            schema,
        )
        .unwrap_err();
        assert!(e.contains("does not allow ph"), "{e}");
        let e = validate_trace_json(
            r#"{"traceEvents":[{"ph":"M","name":"n","pid":"oops","args":{}}],"displayTimeUnit":"ms","otherData":{}}"#,
            schema,
        )
        .unwrap_err();
        assert!(e.contains("expected number"), "{e}");
    }
}
