//! Telemetry surfacing: the merged service+sim Perfetto export, the
//! dependency-free metrics-snapshot validator behind the CI gate, and
//! the unified stats report (one printer for `CacheStats` +
//! `StoreStats` + `ServiceStats`, rendered from the registry).

use crate::profile::{parse_json, Json};
use crate::service::ServiceStats;
use muir_core::compiled::CacheStats;
use muir_core::telemetry::{self, Snapshot, SpanRec};
use muir_sim::Trace;
use muir_store::StoreStats;

/// Chrome-trace process id of the service span track (task tracks use
/// the task index, memory tracks `MEM_PID_BASE +`, so 2000 is clear).
pub const SERVICE_PID: u32 = 2000;

/// Merge the telemetry span log with one simulated workload's PR-2 trace
/// into a single Chrome/Perfetto JSON document: service-level spans
/// (drain / group / store-probe / compile / simulate / retry) on the
/// `service` process, sim-level events (fires, stalls, channel depths,
/// memory lifetimes) on their usual task/memory tracks, time-shifted so
/// the sim timeline starts under its enclosing `service.simulate` span.
pub fn merged_chrome_json(spans: &[SpanRec], trace: Option<&Trace>) -> String {
    let mut evs: Vec<String> = vec![format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{SERVICE_PID},\"args\":{{\"name\":\"service\"}}}}"
    )];
    evs.extend(telemetry::chrome_span_events(spans, SERVICE_PID));
    if let Some(t) = trace {
        // Anchor cycle 0 at the first simulate span (1 cycle = 1 µs, so
        // the sim events nest under the span that ran them).
        let offset = spans
            .iter()
            .filter(|s| s.name == "service.simulate")
            .map(|s| s.start_us)
            .min()
            .unwrap_or(0);
        evs.extend(t.chrome_events(offset));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"generator\":\"muir-telemetry\",\"timebase\":\"1 cycle = 1us; spans in wall-clock us\"}}}}\n",
        evs.join(",\n")
    )
}

/// What the metrics validator checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Counters present.
    pub counters: usize,
    /// Gauges present.
    pub gauges: usize,
    /// Histograms present.
    pub histograms: usize,
    /// Total histogram observations.
    pub observations: u64,
}

fn check_fields(entry: &Json, required: &Json, what: &str, i: usize) -> Result<(), String> {
    let Json::Obj(fields) = required else {
        return Err(format!("schema `{what}_required` must be an object"));
    };
    for (key, ty) in fields {
        let want = ty.as_str().ok_or("schema types must be strings")?;
        let got = entry
            .get(key)
            .ok_or_else(|| format!("{what} {i} missing `{key}`"))?;
        if got.type_name() != want {
            return Err(format!(
                "{what} {i} `{key}`: expected {want}, got {}",
                got.type_name()
            ));
        }
    }
    Ok(())
}

fn num_array(v: &Json, what: &str, i: usize, key: &str) -> Result<Vec<u64>, String> {
    let Some(Json::Arr(items)) = v.get(key) else {
        return Err(format!("{what} {i} `{key}` is not an array"));
    };
    items
        .iter()
        .map(|x| match x {
            Json::Num(n) if *n >= 0.0 => Ok(*n as u64),
            _ => Err(format!("{what} {i} `{key}` has a non-numeric entry")),
        })
        .collect()
}

/// Validate a telemetry JSON snapshot against
/// `scripts/metrics_schema.json`: top-level shape, per-entry required
/// fields, and the histogram invariants the schema language cannot
/// express (strictly increasing bounds, `counts.len == bounds.len + 1`,
/// `count == Σ counts`).
///
/// # Errors
/// The first violation, with enough context to locate the entry.
pub fn validate_metrics_json(snapshot: &str, schema: &str) -> Result<MetricsSummary, String> {
    let schema = parse_json(schema).map_err(|e| format!("schema is not valid JSON: {e}"))?;
    let snap = parse_json(snapshot).map_err(|e| format!("snapshot is not valid JSON: {e}"))?;

    let top_req = schema
        .get("top_required")
        .ok_or("schema missing `top_required`")?;
    let Json::Obj(top_fields) = top_req else {
        return Err("`top_required` must be an object".to_string());
    };
    for (key, ty) in top_fields {
        let want = ty.as_str().ok_or("schema types must be strings")?;
        let got = snap
            .get(key)
            .ok_or_else(|| format!("snapshot missing top-level `{key}`"))?;
        if got.type_name() != want {
            return Err(format!(
                "top-level `{key}`: expected {want}, got {}",
                got.type_name()
            ));
        }
    }

    let mut summary = MetricsSummary::default();
    let mut tallies = [0usize; 3];
    for (slot, (section, req_key)) in [
        ("counters", "counter_required"),
        ("gauges", "gauge_required"),
        ("histograms", "histogram_required"),
    ]
    .into_iter()
    .enumerate()
    {
        let required = schema
            .get(req_key)
            .ok_or_else(|| format!("schema missing `{req_key}`"))?;
        let Some(Json::Arr(entries)) = snap.get(section) else {
            return Err(format!("snapshot `{section}` is not an array"));
        };
        tallies[slot] = entries.len();
        for (i, entry) in entries.iter().enumerate() {
            check_fields(entry, required, section, i)?;
        }
    }
    [summary.counters, summary.gauges, summary.histograms] = tallies;

    if let Some(Json::Arr(hists)) = snap.get("histograms") {
        for (i, h) in hists.iter().enumerate() {
            let bounds = num_array(h, "histogram", i, "bounds")?;
            let counts = num_array(h, "histogram", i, "counts")?;
            if bounds.is_empty() || bounds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!(
                    "histogram {i}: bounds must be non-empty and strictly increasing"
                ));
            }
            if counts.len() != bounds.len() + 1 {
                return Err(format!(
                    "histogram {i}: counts.len ({}) != bounds.len + 1 ({})",
                    counts.len(),
                    bounds.len() + 1
                ));
            }
            let total: u64 = counts.iter().sum();
            let declared = match h.get("count") {
                Some(Json::Num(n)) => *n as u64,
                _ => return Err(format!("histogram {i}: missing numeric `count`")),
            };
            if total != declared {
                return Err(format!(
                    "histogram {i}: count {declared} != sum of bucket counts {total}"
                ));
            }
            summary.observations += total;
        }
    }
    Ok(summary)
}

/// Mirror the three layers' authoritative stats structs into the
/// registry as `stats.*` gauges, so the unified report (and any metrics
/// consumer) reads one source. Telemetry must be enabled — gauge writes
/// are no-ops otherwise.
pub fn mirror_stats(cache: &CacheStats, store: Option<&StoreStats>, svc: Option<&ServiceStats>) {
    let g = telemetry::gauge_set;
    g("stats.cache.hits", cache.hits);
    g("stats.cache.misses", cache.misses);
    g("stats.cache.entries", cache.entries as u64);
    g("stats.cache.evictions", cache.evictions);
    g("stats.cache.capacity", cache.capacity as u64);
    if let Some(s) = store {
        g("stats.store.artifact_puts", s.artifact_puts);
        g("stats.store.result_puts", s.result_puts);
        g("stats.store.result_hits", s.result_hits);
        g("stats.store.result_misses", s.result_misses);
        g("stats.store.corrupt_entries", s.corrupt_entries);
        g("stats.store.quarantined", s.quarantined);
        g("stats.store.put_errors", s.put_errors);
        g("stats.store.disabled", u64::from(s.disabled));
        g("stats.store.fault.truncate-write", s.faults.truncate_write);
        g("stats.store.fault.bit-flip-read", s.faults.bit_flip_read);
        g("stats.store.fault.rename-fail", s.faults.rename_fail);
        g("stats.store.fault.stale-version", s.faults.stale_version);
    }
    if let Some(s) = svc {
        g("stats.service.submitted", s.submitted);
        g("stats.service.executed_groups", s.executed_groups);
        g("stats.service.coalesced", s.coalesced);
        g("stats.service.store_hits", s.store_hits);
        g("stats.service.recomputed", s.recomputed);
        g("stats.service.retries", s.retries);
        g("stats.service.deadline_clipped", s.deadline_clipped);
        g("stats.service.store_warnings", s.store_warnings);
        g("stats.service.jobs_timed", s.jobs_timed);
        g("stats.service.p50_wall_us", s.p50_wall_us);
        g("stats.service.p95_wall_us", s.p95_wall_us);
        g("stats.service.max_wall_us", s.max_wall_us);
    }
}

/// The combined stats report: compile cache + store + service + sim in
/// one rendering, read back from the registry snapshot (the `stats.*`
/// gauges written by [`mirror_stats`] plus the live `sim.*` counters).
pub fn render_unified(snap: &Snapshot) -> String {
    let g = |name: &str| snap.gauge(name);
    let c = |name: &str| snap.counter(name);
    let mut out = String::from("== unified stats ==\n");
    let lookups = g("stats.cache.hits") + g("stats.cache.misses");
    out.push_str(&format!(
        "compile cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, {}/{} entries\n",
        g("stats.cache.hits"),
        g("stats.cache.misses"),
        if lookups == 0 {
            0.0
        } else {
            100.0 * g("stats.cache.hits") as f64 / lookups as f64
        },
        g("stats.cache.evictions"),
        g("stats.cache.entries"),
        g("stats.cache.capacity"),
    ));
    out.push_str(&format!(
        "store: {} result hits / {} misses, {} result puts, {} artifact puts, \
         {} put errors, {} corrupt, {} quarantined{}\n",
        g("stats.store.result_hits"),
        g("stats.store.result_misses"),
        g("stats.store.result_puts"),
        g("stats.store.artifact_puts"),
        g("stats.store.put_errors"),
        g("stats.store.corrupt_entries"),
        g("stats.store.quarantined"),
        if g("stats.store.disabled") > 0 {
            " [DISABLED]"
        } else {
            ""
        },
    ));
    let faults: u64 = [
        "stats.store.fault.truncate-write",
        "stats.store.fault.bit-flip-read",
        "stats.store.fault.rename-fail",
        "stats.store.fault.stale-version",
    ]
    .iter()
    .map(|n| g(n))
    .sum();
    if faults > 0 {
        out.push_str(&format!(
            "  injected faults: {} truncate-write, {} bit-flip-read, {} rename-fail, {} stale-version\n",
            g("stats.store.fault.truncate-write"),
            g("stats.store.fault.bit-flip-read"),
            g("stats.store.fault.rename-fail"),
            g("stats.store.fault.stale-version"),
        ));
    }
    let submitted = g("stats.service.submitted");
    out.push_str(&format!(
        "service: {} submitted, {} executed groups, {} coalesced ({:.1}% dedup), \
         {} store hits, {} recomputed\n",
        submitted,
        g("stats.service.executed_groups"),
        g("stats.service.coalesced"),
        if submitted == 0 {
            0.0
        } else {
            100.0 * g("stats.service.coalesced") as f64 / submitted as f64
        },
        g("stats.service.store_hits"),
        g("stats.service.recomputed"),
    ));
    out.push_str(&format!(
        "  retries {}, deadline-clipped {}, store warnings {}; \
         job wall us p50 {} / p95 {} / max {} ({} timed)\n",
        g("stats.service.retries"),
        g("stats.service.deadline_clipped"),
        g("stats.service.store_warnings"),
        g("stats.service.p50_wall_us"),
        g("stats.service.p95_wall_us"),
        g("stats.service.max_wall_us"),
        g("stats.service.jobs_timed"),
    ));
    out.push_str(&format!(
        "sim: {} runs, {} cycles, {} fires, {} cache hits / {} misses, \
         {} bank conflicts, {} dram fills\n",
        c("sim.runs"),
        c("sim.cycles"),
        c("sim.fires"),
        c("sim.cache_hits"),
        c("sim.cache_misses"),
        c("sim.bank_conflicts"),
        c("sim.dram_fills"),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> String {
        std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scripts/metrics_schema.json"
        ))
        .expect("metrics schema present")
    }

    #[test]
    fn valid_snapshot_passes_schema() {
        let snap = r#"{
          "version": 1, "generator": "muir-telemetry",
          "counters": [{"name":"a.b","value":3}],
          "gauges": [{"name":"g","value":0}],
          "histograms": [{"name":"h","bounds":[1,10],"counts":[2,0,1],"sum":14,"count":3}]
        }"#;
        let s = validate_metrics_json(snap, &schema()).unwrap();
        assert_eq!((s.counters, s.gauges, s.histograms), (1, 1, 1));
        assert_eq!(s.observations, 3);
    }

    #[test]
    fn histogram_invariants_are_enforced() {
        let bad_len = r#"{
          "version": 1, "generator": "x", "counters": [], "gauges": [],
          "histograms": [{"name":"h","bounds":[1,10],"counts":[2,0],"sum":2,"count":2}]
        }"#;
        assert!(validate_metrics_json(bad_len, &schema())
            .unwrap_err()
            .contains("counts.len"));
        let bad_sum = r#"{
          "version": 1, "generator": "x", "counters": [], "gauges": [],
          "histograms": [{"name":"h","bounds":[1,10],"counts":[2,0,0],"sum":2,"count":3}]
        }"#;
        assert!(validate_metrics_json(bad_sum, &schema())
            .unwrap_err()
            .contains("sum of bucket counts"));
        let bad_bounds = r#"{
          "version": 1, "generator": "x", "counters": [], "gauges": [],
          "histograms": [{"name":"h","bounds":[10,1],"counts":[0,0,0],"sum":0,"count":0}]
        }"#;
        assert!(validate_metrics_json(bad_bounds, &schema())
            .unwrap_err()
            .contains("strictly increasing"));
    }

    #[test]
    fn missing_required_field_is_reported() {
        let snap = r#"{
          "version": 1, "generator": "x",
          "counters": [{"value":3}], "gauges": [], "histograms": []
        }"#;
        assert!(validate_metrics_json(snap, &schema())
            .unwrap_err()
            .contains("missing `name`"));
    }

    #[test]
    fn live_snapshot_round_trips_through_the_validator() {
        muir_core::telemetry::set_enabled(true);
        muir_core::telemetry::count("gate.test.counter", 2);
        muir_core::telemetry::observe("gate.test.hist", &[1, 10], 7);
        muir_core::telemetry::set_enabled(false);
        let json = muir_core::telemetry::snapshot().to_json();
        let s = validate_metrics_json(&json, &schema()).unwrap();
        assert!(s.counters >= 1 && s.histograms >= 1);
    }
}
