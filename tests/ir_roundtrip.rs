//! Round-trip every paper benchmark through the textual IR form:
//! print → parse → verify → interpret → translate → simulate, and check
//! that nothing changed.

use muir::frontend::{translate, FrontendConfig};
use muir::mir::interp::Interp;
use muir::mir::parser::parse_module;
use muir::mir::printer::print_module;
use muir::sim::{simulate, SimConfig};
use muir::workloads;

#[test]
fn all_workloads_roundtrip_through_text() {
    for w in workloads::all() {
        let p1 = print_module(&w.module);
        let m2 = parse_module(&p1).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        muir::mir::verify::verify_module(&m2).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        // Idempotence after normalisation.
        let p2 = print_module(&m2);
        let m3 = parse_module(&p2).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            p2,
            print_module(&m3),
            "{}: print∘parse not idempotent",
            w.name
        );
        // The parsed program computes the same outputs.
        let ref_mem = w.run_reference().unwrap();
        let mut mem2 = w.fresh_memory();
        Interp::new(&m2)
            .run_main(&mut mem2, &[])
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(
            w.outputs_match(&ref_mem, &mem2),
            "{}: parsed program diverges",
            w.name
        );
    }
}

#[test]
fn parsed_programs_translate_and_simulate() {
    // A representative subset (full sweep is covered by end_to_end).
    for name in ["GEMM", "FFT", "M-SORT", "2MM[T]", "SOFTM8"] {
        let w = workloads::by_name(name).unwrap();
        let m2 = parse_module(&print_module(&w.module)).unwrap();
        let acc =
            translate(&m2, &FrontendConfig::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        let ref_mem = w.run_reference().unwrap();
        let mut mem = w.fresh_memory();
        simulate(&acc, &mut mem, &[], &SimConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            w.outputs_match(&ref_mem, &mem),
            "{name}: parsed accelerator diverges"
        );
    }
}
