//! Workspace integration test: stacking μopt passes never changes what an
//! accelerator computes — the composability property (§1, novelty iv) the
//! latency-agnostic interfaces are supposed to guarantee.

use muir::frontend::{translate, FrontendConfig};
use muir::sim::{simulate, SimConfig};
use muir::uopt::passes::{
    CacheBanking, Cse, ExecutionTiling, MemoryLocalization, OpFusion, ScratchpadBanking, Simplify,
    TaskQueueing,
};
use muir::uopt::PassManager;
use muir::workloads;

fn full_stack() -> PassManager {
    PassManager::new()
        .with(Simplify)
        .with(Cse)
        .with(TaskQueueing::all(8))
        .with(ExecutionTiling::spawned(4))
        .with(MemoryLocalization::default())
        .with(ScratchpadBanking { banks: 2 })
        .with(CacheBanking { banks: 2 })
        .with(OpFusion::default())
        .with(Simplify)
}

#[test]
fn full_pass_stack_preserves_all_workloads() {
    for w in workloads::all() {
        let mut acc = translate(&w.module, &FrontendConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let baseline_cycles = {
            let mut mem = w.fresh_memory();
            simulate(&acc, &mut mem, &[], &SimConfig::default())
                .unwrap_or_else(|e| panic!("{} baseline: {e}", w.name))
                .cycles
        };
        let report = full_stack()
            .run(&mut acc)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(!report.deltas.is_empty());
        let ref_mem = w.run_reference().unwrap();
        let mut mem = w.fresh_memory();
        let r = simulate(&acc, &mut mem, &[], &SimConfig::default())
            .unwrap_or_else(|e| panic!("{} optimized: {e}", w.name));
        assert!(
            w.outputs_match(&ref_mem, &mem),
            "{}: optimized accelerator computes different outputs",
            w.name
        );
        println!(
            "{:>10}: baseline {} → optimized {} cycles ({:.2}x)",
            w.name,
            baseline_cycles,
            r.cycles,
            baseline_cycles as f64 / r.cycles as f64
        );
    }
}

#[test]
fn tensor_lowering_preserves_tensor_workloads() {
    use muir::uopt::passes::LowerTensors;
    for name in ["RELU[T]", "2MM[T]", "CONV[T]"] {
        let w = workloads::by_name(name).unwrap();
        let mut acc = translate(&w.module, &FrontendConfig::default()).unwrap();
        PassManager::new().with(LowerTensors).run(&mut acc).unwrap();
        let ref_mem = w.run_reference().unwrap();
        let mut mem = w.fresh_memory();
        simulate(&acc, &mut mem, &[], &SimConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            w.outputs_match(&ref_mem, &mem),
            "{name}: lowered outputs differ"
        );
    }
}

#[test]
fn individual_passes_preserve_a_representative_mix() {
    // Each pass alone, on a workload that exercises it.
    let cases: Vec<(&str, PassManager)> = vec![
        ("SAXPY", PassManager::new().with(TaskQueueing::all(8))),
        (
            "STENCIL",
            PassManager::new().with(ExecutionTiling::spawned(8)),
        ),
        (
            "SPMV",
            PassManager::new().with(MemoryLocalization::default()),
        ),
        ("GEMM", PassManager::new().with(CacheBanking { banks: 4 })),
        ("FFT", PassManager::new().with(OpFusion::default())),
        ("RGB2YUV", PassManager::new().with(OpFusion::default())),
        (
            "M-SORT",
            PassManager::new().with(ExecutionTiling::spawned(4)),
        ),
    ];
    for (name, pm) in cases {
        let w = workloads::by_name(name).unwrap();
        let mut acc = translate(&w.module, &FrontendConfig::default()).unwrap();
        pm.run(&mut acc).unwrap_or_else(|e| panic!("{name}: {e}"));
        let ref_mem = w.run_reference().unwrap();
        let mut mem = w.fresh_memory();
        simulate(&acc, &mut mem, &[], &SimConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            w.outputs_match(&ref_mem, &mem),
            "{name}: pass broke semantics"
        );
    }
}
