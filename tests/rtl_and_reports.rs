//! Integration tests for Stage 3 artefacts across all 21 benchmarks:
//! Chisel emission, textual/GraphViz dumps, FIRRTL-level lowering, and the
//! synthesis cost model — plus the §5.2 pipeline-depth observation.

use muir::core::printer::print_accelerator;
use muir::core::stats::{graph_stats, pipeline_depth};
use muir::core::CompiledAccel;
use muir::frontend::{translate, FrontendConfig};
use muir::rtl::circuit::lower_to_circuit;
use muir::rtl::cost::{estimate, Tech};
use muir::rtl::emit_chisel;
use muir::workloads;

#[test]
fn chisel_emits_for_every_workload() {
    for w in workloads::all() {
        let acc = translate(&w.module, &FrontendConfig::default()).unwrap();
        let src = emit_chisel(&CompiledAccel::compile(&acc).unwrap());
        assert!(src.contains("extends architecture"), "{}", w.name);
        // One TaskModule class per task block.
        let classes = src.matches("extends TaskModule").count();
        assert_eq!(classes, acc.tasks.len(), "{}", w.name);
        // Every structure is instantiated.
        for si in 0..acc.structures.len() {
            assert!(
                src.contains(&format!("hw_mem_{si}")),
                "{}: missing structure",
                w.name
            );
        }
        // Every `<||>` connection appears (one wiring line per connection).
        assert_eq!(
            src.matches(".io.task <||>").count(),
            acc.task_conns.len(),
            "{}",
            w.name
        );
    }
}

#[test]
fn text_and_dot_dumps_cover_every_workload() {
    for w in workloads::all() {
        let acc = translate(&w.module, &FrontendConfig::default()).unwrap();
        let text = print_accelerator(&acc);
        assert!(text.contains(&format!("accelerator \"{}\"", w.module.name)));
        let nodes: usize = acc.tasks.iter().map(|t| t.dataflow.nodes.len()).sum();
        // One line per node.
        assert_eq!(text.matches(" = ").count(), nodes, "{}", w.name);
        let dot = muir::core::dot::to_dot(&acc);
        assert!(dot.starts_with("digraph"), "{}", w.name);
        assert_eq!(
            dot.matches("subgraph cluster_").count(),
            acc.tasks.len(),
            "{}",
            w.name
        );
    }
}

#[test]
fn firrtl_lowering_ratio_in_paper_band() {
    // Paper Table 4: FIRRTL graphs are 8.4–12.4× the μIR graph. Allow a
    // wider tolerance band but require a substantial, bounded blowup.
    for w in workloads::all() {
        let acc = translate(&w.module, &FrontendConfig::default()).unwrap();
        let circ = lower_to_circuit(&acc).total_elements() as f64;
        let uir = graph_stats(&acc).total_elements() as f64;
        let ratio = circ / uir;
        assert!((3.0..30.0).contains(&ratio), "{}: ratio {ratio}", w.name);
    }
}

#[test]
fn cost_model_is_sane_for_every_workload() {
    for w in workloads::all() {
        let acc = translate(&w.module, &FrontendConfig::default()).unwrap();
        let comp = CompiledAccel::compile(&acc).unwrap();
        let f = estimate(&comp, Tech::FpgaArria10);
        let a = estimate(&comp, Tech::Asic28);
        assert!(
            f.fmax_mhz >= 150.0 && f.fmax_mhz <= 500.0,
            "{}: {f:?}",
            w.name
        );
        assert!(
            f.power_mw > 300.0 && f.power_mw < 3000.0,
            "{}: {f:?}",
            w.name
        );
        assert!(a.fmax_mhz > f.fmax_mhz, "{}: asic slower than fpga", w.name);
        assert!(
            a.power_mw < f.power_mw,
            "{}: asic power exceeds fpga",
            w.name
        );
        assert!(a.area_mm2 > 0.0, "{}", w.name);
        if w.fp {
            assert!(a.fmax_mhz <= 1661.0, "{}: FP cap violated", w.name);
        }
        if w.tensor && w.name != "RELU[T]" {
            // MatMul/Conv tensor units are DSP arrays (Figure 14); the
            // ReLU tile unit is pure LUT logic.
            assert!(f.dsps >= 4, "{}: tensor units should map to DSPs", w.name);
        }
    }
}

#[test]
fn pipeline_depths_match_section_5_2() {
    // §5.2: "the µIR's pipeline depth is 30 (2MM) — 40 (GEMM) stages; even
    // workloads with few loops such as Dense8 have 15 stages." Our depths
    // land in the same tens-of-stages regime.
    let mut checked = 0;
    for name in ["GEMM", "2MM", "DENSE8", "FFT", "COVAR"] {
        let w = workloads::by_name(name).unwrap();
        let acc = translate(&w.module, &FrontendConfig::default()).unwrap();
        let depth = acc
            .tasks
            .iter()
            .map(|t| pipeline_depth(&t.dataflow))
            .max()
            .unwrap_or(0);
        assert!((10..=80).contains(&depth), "{name}: depth {depth}");
        checked += 1;
    }
    assert_eq!(checked, 5);
}

#[test]
fn table2_relative_trends_hold() {
    // Cilk designs clock lower than loop-nest designs (§5.1).
    let cilk = workloads::by_name("SAXPY").unwrap();
    let poly = workloads::by_name("GEMM").unwrap();
    let seal = |w: &muir::workloads::Workload| {
        CompiledAccel::compile(&translate(&w.module, &FrontendConfig::default()).unwrap()).unwrap()
    };
    let f_cilk = estimate(&seal(&cilk), Tech::FpgaArria10);
    let f_poly = estimate(&seal(&poly), Tech::FpgaArria10);
    assert!(f_cilk.fmax_mhz < f_poly.fmax_mhz);
    // Compute-dense STENCIL outweighs tiny RELU in area.
    let stencil = workloads::by_name("STENCIL").unwrap();
    let relu = workloads::by_name("RELU").unwrap();
    let a_stencil = estimate(&seal(&stencil), Tech::FpgaArria10);
    let a_relu = estimate(&seal(&relu), Tech::FpgaArria10);
    assert!(a_stencil.alms > 3 * a_relu.alms);
}
