//! Workspace integration test: every paper benchmark goes through the full
//! pipeline — mir program → μIR accelerator → cycle-level simulation — and
//! the simulated accelerator's output memory must match the reference
//! interpreter on all output objects.

use muir::frontend::{translate, FrontendConfig};
use muir::sim::{simulate, SimConfig};
use muir::workloads;

#[test]
fn every_workload_translates() {
    for w in workloads::all() {
        let acc = translate(&w.module, &FrontendConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(acc.tasks.len() >= 2, "{}: suspiciously small graph", w.name);
        muir::core::verify::verify_accelerator(&acc).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn every_workload_simulates_correctly() {
    for w in workloads::all() {
        let acc = translate(&w.module, &FrontendConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let ref_mem = w
            .run_reference()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut sim_mem = w.fresh_memory();
        let r = simulate(&acc, &mut sim_mem, &[], &SimConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(
            w.outputs_match(&ref_mem, &sim_mem),
            "{}: simulated outputs differ from the reference interpreter",
            w.name
        );
        assert!(r.cycles > 0, "{}", w.name);
        println!(
            "{:>10}: {} cycles, {} fires",
            w.name, r.cycles, r.stats.fires
        );
    }
}
