//! Property-based tests (proptest) over the toolchain's core invariants:
//!
//! * random straight-line programs: translate → simulate ≡ interpret;
//! * random loop programs with strided memory updates: same equivalence,
//!   plus μopt passes never change results;
//! * affine address analysis is consistent with concrete evaluation;
//! * fused plans evaluate exactly like the node chains they replace;
//! * the memory models never lose or duplicate transactions.

use muir::frontend::{translate, FrontendConfig};
use muir::mir::builder::FunctionBuilder;
use muir::mir::instr::{BinOp, CmpPred, ValueRef};
use muir::mir::interp::{Interp, Memory};
use muir::mir::module::Module;
use muir::mir::types::{ScalarType, Type};
use muir::sim::{simulate, SimConfig};
use muir::uopt::passes::{MemoryLocalization, OpFusion, ScratchpadBanking};
use muir::uopt::PassManager;
use proptest::prelude::*;

/// A small random integer expression program over two arrays.
#[derive(Debug, Clone)]
enum ExprOp {
    Add,
    Sub,
    Mul,
    And,
    Xor,
    Shl3,
}

fn expr_op() -> impl Strategy<Value = ExprOp> {
    prop_oneof![
        Just(ExprOp::Add),
        Just(ExprOp::Sub),
        Just(ExprOp::Mul),
        Just(ExprOp::And),
        Just(ExprOp::Xor),
        Just(ExprOp::Shl3),
    ]
}

fn apply(b: &mut FunctionBuilder, op: &ExprOp, x: ValueRef, y: ValueRef) -> ValueRef {
    match op {
        ExprOp::Add => b.add(x, y),
        ExprOp::Sub => b.sub(x, y),
        ExprOp::Mul => b.mul(x, y),
        ExprOp::And => b.and(x, y),
        ExprOp::Xor => b.xor(x, y),
        ExprOp::Shl3 => {
            let s = b.and(y, ValueRef::int(3));
            b.shl(x, s)
        }
    }
}

/// Build `out[i] = f(a[i], i)` where `f` is a random op chain.
fn random_loop_module(ops: &[ExprOp], n: i64) -> (Module, muir::mir::instr::MemObjId, muir::mir::instr::MemObjId) {
    let mut m = Module::new("prop");
    let a = m.add_ro_mem_object("a", ScalarType::I32, n as u64);
    let out = m.add_mem_object("out", ScalarType::I32, n as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    let ops = ops.to_vec();
    b.for_loop(0, ValueRef::int(n), 1, move |b, i| {
        let v = b.load(a, i);
        let mut cur = v;
        for op in &ops {
            cur = apply(b, op, cur, i);
        }
        b.store(out, i, cur);
    });
    b.ret(None);
    m.add_function(b.finish());
    (m, a, out)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Any random op-chain loop: the simulated accelerator computes exactly
    /// what the interpreter computes.
    #[test]
    fn simulated_accelerator_matches_interpreter(
        ops in proptest::collection::vec(expr_op(), 1..6),
        data in proptest::collection::vec(-100i64..100, 16),
    ) {
        let n = data.len() as i64;
        let (m, a, out) = random_loop_module(&ops, n);
        let acc = translate(&m, &FrontendConfig::default()).unwrap();

        let mut ref_mem = Memory::from_module(&m);
        ref_mem.init_i64(a, &data);
        Interp::new(&m).run_main(&mut ref_mem, &[]).unwrap();

        let mut sim_mem = Memory::from_module(&m);
        sim_mem.init_i64(a, &data);
        simulate(&acc, &mut sim_mem, &[], &SimConfig::default()).unwrap();
        prop_assert_eq!(ref_mem.read_i64(out), sim_mem.read_i64(out));
    }

    /// μopt passes never change what a random program computes.
    #[test]
    fn passes_preserve_random_programs(
        ops in proptest::collection::vec(expr_op(), 1..6),
        data in proptest::collection::vec(-50i64..50, 16),
        banks in 1u32..5,
    ) {
        let n = data.len() as i64;
        let (m, a, out) = random_loop_module(&ops, n);
        let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
        PassManager::new()
            .with(MemoryLocalization::default())
            .with(ScratchpadBanking { banks })
            .with(OpFusion::default())
            .run(&mut acc)
            .unwrap();

        let mut ref_mem = Memory::from_module(&m);
        ref_mem.init_i64(a, &data);
        Interp::new(&m).run_main(&mut ref_mem, &[]).unwrap();

        let mut sim_mem = Memory::from_module(&m);
        sim_mem.init_i64(a, &data);
        simulate(&acc, &mut sim_mem, &[], &SimConfig::default()).unwrap();
        prop_assert_eq!(ref_mem.read_i64(out), sim_mem.read_i64(out));
    }

    /// Predicated programs (if/else over a comparison) stay equivalent.
    #[test]
    fn predication_matches_interpreter(
        threshold in -20i64..20,
        data in proptest::collection::vec(-30i64..30, 16),
    ) {
        let n = data.len() as i64;
        let mut m = Module::new("pred");
        let a = m.add_ro_mem_object("a", ScalarType::I32, n as u64);
        let out = m.add_mem_object("out", ScalarType::I32, n as u64);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(n), 1, move |b, i| {
            let v = b.load(a, i);
            let c = b.icmp(CmpPred::Lt, v, ValueRef::int(threshold));
            let r = b.if_val(
                c,
                &[Type::I64],
                |b| vec![b.mul(ValueRef::Instr(v.as_instr().unwrap()), ValueRef::int(2))],
                |b| vec![b.sub(ValueRef::Instr(v.as_instr().unwrap()), ValueRef::int(1))],
            );
            b.store(out, i, r[0]);
        });
        b.ret(None);
        m.add_function(b.finish());

        let acc = translate(&m, &FrontendConfig::default()).unwrap();
        let mut ref_mem = Memory::from_module(&m);
        ref_mem.init_i64(a, &data);
        Interp::new(&m).run_main(&mut ref_mem, &[]).unwrap();
        let mut sim_mem = Memory::from_module(&m);
        sim_mem.init_i64(a, &data);
        simulate(&acc, &mut sim_mem, &[], &SimConfig::default()).unwrap();
        prop_assert_eq!(ref_mem.read_i64(out), sim_mem.read_i64(out));
    }

    /// Reduction loops with a register accumulator.
    #[test]
    fn reductions_match_interpreter(
        data in proptest::collection::vec(-40i64..40, 24),
        init in -10i64..10,
    ) {
        let n = data.len() as i64;
        let mut m = Module::new("red");
        let a = m.add_ro_mem_object("a", ScalarType::I32, n as u64);
        let out = m.add_mem_object("out", ScalarType::I32, 1);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        let accs = b.for_loop_acc(
            ValueRef::int(0),
            ValueRef::int(n),
            1,
            &[(ValueRef::int(init), Type::I64)],
            |b, i, accs| {
                let v = b.load(a, i);
                vec![b.add(accs[0], v)]
            },
        );
        b.store(out, ValueRef::int(0), accs[0]);
        b.ret(None);
        m.add_function(b.finish());

        let acc_graph = translate(&m, &FrontendConfig::default()).unwrap();
        let expect: i64 = init + data.iter().sum::<i64>();
        let mut sim_mem = Memory::from_module(&m);
        sim_mem.init_i64(a, &data);
        simulate(&acc_graph, &mut sim_mem, &[], &SimConfig::default()).unwrap();
        prop_assert_eq!(sim_mem.read_i64(out)[0], expect);

        // And with the accumulator re-timed into a FusedAcc unit.
        let mut fused = translate(&m, &FrontendConfig::default()).unwrap();
        PassManager::new().with(OpFusion::default()).run(&mut fused).unwrap();
        let mut sim_mem2 = Memory::from_module(&m);
        sim_mem2.init_i64(a, &data);
        simulate(&fused, &mut sim_mem2, &[], &SimConfig::default()).unwrap();
        prop_assert_eq!(sim_mem2.read_i64(out)[0], expect);
    }

    /// The affine analysis agrees with concrete address arithmetic:
    /// `idx = i*scale + offset` is recognised with those exact constants.
    #[test]
    fn affine_analysis_matches_concrete(scale in 1i64..8, offset in 0i64..16) {
        use muir::mir::analysis::{affine_of, induction_var, natural_loops, Affine};
        let mut m = Module::new("aff");
        let a = m.add_mem_object("a", ScalarType::I32, 256);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(8), 1, move |b, i| {
            let s = b.mul(i, ValueRef::int(scale));
            let idx = b.add(s, ValueRef::int(offset));
            b.store(a, idx, i);
        });
        b.ret(None);
        let f = b.finish();
        m.add_function(f);
        let f = m.main().unwrap();
        let loops = natural_loops(f);
        let iv = induction_var(f, &loops[0]).unwrap();
        let addr = f
            .instrs
            .iter()
            .find_map(|ins| match ins.op {
                muir::mir::instr::Op::Store { .. } => Some(ins.operands[0]),
                _ => None,
            })
            .unwrap();
        match affine_of(f, addr, iv, &loops[0]) {
            Affine::Affine { scale: s, konst, syms } => {
                prop_assert_eq!(s, scale);
                prop_assert_eq!(konst, offset);
                prop_assert!(syms.is_empty());
            }
            Affine::Opaque => prop_assert!(false, "expected affine form"),
        }
    }

    /// Scratchpad model conservation: every submitted element is serviced
    /// exactly once, regardless of banking.
    #[test]
    fn scratchpad_conserves_transactions(
        addrs in proptest::collection::vec(0u64..64, 1..24),
        banks in 1u32..5,
    ) {
        use muir::core::structure::{Structure, StructureKind};
        use muir::sim::memory::{MemRequest, StructModel};
        let mut s = Structure::scratchpad("s", 64);
        if let StructureKind::Scratchpad { banks: b, .. } = &mut s.kind {
            *b = banks;
        }
        let mut model = StructModel::new(&s);
        for (i, &a) in addrs.iter().enumerate() {
            model.submit(MemRequest { id: i as u64 + 1, addrs: vec![a], is_write: false });
        }
        let mut done = Vec::new();
        for c in 0..10_000 {
            for r in model.tick(c, None) {
                done.push(r.id);
            }
            if done.len() == addrs.len() {
                break;
            }
        }
        done.sort_unstable();
        let expect: Vec<u64> = (1..=addrs.len() as u64).collect();
        prop_assert_eq!(done, expect);
        prop_assert!(model.is_idle());
    }
}
