//! Property-based tests over the toolchain's core invariants, driven by a
//! seeded in-tree RNG (no external fuzzing dependencies — the generator is
//! a splitmix64 stream, so every case is reproducible from its seed):
//!
//! * random straight-line programs: translate → simulate ≡ interpret;
//! * random loop programs with strided memory updates: same equivalence,
//!   plus μopt passes never change results;
//! * affine address analysis is consistent with concrete evaluation;
//! * the memory models never lose or duplicate transactions.

use muir::frontend::{translate, FrontendConfig};
use muir::mir::builder::FunctionBuilder;
use muir::mir::instr::{CmpPred, ValueRef};
use muir::mir::interp::{Interp, Memory};
use muir::mir::module::Module;
use muir::mir::types::{ScalarType, Type};
use muir::sim::{simulate, SimConfig};
use muir::uopt::passes::{MemoryLocalization, OpFusion, ScratchpadBanking};
use muir::uopt::PassManager;

/// Deterministic splitmix64 stream: the test-local stand-in for a property
/// testing framework's generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo);
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    fn vec_i64(&mut self, n: usize, lo: i64, hi: i64) -> Vec<i64> {
        (0..n).map(|_| self.range(lo, hi)).collect()
    }
}

/// A small random integer expression over two operands.
#[derive(Debug, Clone, Copy)]
enum ExprOp {
    Add,
    Sub,
    Mul,
    And,
    Xor,
    Shl3,
}

const OPS: [ExprOp; 6] = [
    ExprOp::Add,
    ExprOp::Sub,
    ExprOp::Mul,
    ExprOp::And,
    ExprOp::Xor,
    ExprOp::Shl3,
];

fn random_ops(g: &mut Gen) -> Vec<ExprOp> {
    let len = g.range(1, 6) as usize;
    (0..len)
        .map(|_| OPS[g.range(0, OPS.len() as i64) as usize])
        .collect()
}

fn apply(b: &mut FunctionBuilder, op: ExprOp, x: ValueRef, y: ValueRef) -> ValueRef {
    match op {
        ExprOp::Add => b.add(x, y),
        ExprOp::Sub => b.sub(x, y),
        ExprOp::Mul => b.mul(x, y),
        ExprOp::And => b.and(x, y),
        ExprOp::Xor => b.xor(x, y),
        ExprOp::Shl3 => {
            let s = b.and(y, ValueRef::int(3));
            b.shl(x, s)
        }
    }
}

/// Build `out[i] = f(a[i], i)` where `f` is a random op chain.
fn random_loop_module(
    ops: &[ExprOp],
    n: i64,
) -> (
    Module,
    muir::mir::instr::MemObjId,
    muir::mir::instr::MemObjId,
) {
    let mut m = Module::new("prop");
    let a = m.add_ro_mem_object("a", ScalarType::I32, n as u64);
    let out = m.add_mem_object("out", ScalarType::I32, n as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    let ops = ops.to_vec();
    b.for_loop(0, ValueRef::int(n), 1, move |b, i| {
        let v = b.load(a, i);
        let mut cur = v;
        for &op in &ops {
            cur = apply(b, op, cur, i);
        }
        b.store(out, i, cur);
    });
    b.ret(None);
    m.add_function(b.finish());
    (m, a, out)
}

/// Any random op-chain loop: the simulated accelerator computes exactly
/// what the interpreter computes.
#[test]
fn simulated_accelerator_matches_interpreter() {
    for case in 0..24u64 {
        let mut g = Gen::new(0x51a0 + case);
        let ops = random_ops(&mut g);
        let data = g.vec_i64(16, -100, 100);
        let n = data.len() as i64;
        let (m, a, out) = random_loop_module(&ops, n);
        let acc = translate(&m, &FrontendConfig::default()).unwrap();

        let mut ref_mem = Memory::from_module(&m);
        ref_mem.init_i64(a, &data);
        Interp::new(&m).run_main(&mut ref_mem, &[]).unwrap();

        let mut sim_mem = Memory::from_module(&m);
        sim_mem.init_i64(a, &data);
        simulate(&acc, &mut sim_mem, &[], &SimConfig::default()).unwrap();
        assert_eq!(
            ref_mem.read_i64(out),
            sim_mem.read_i64(out),
            "case {case}: ops {ops:?}"
        );
    }
}

/// μopt passes never change what a random program computes.
#[test]
fn passes_preserve_random_programs() {
    for case in 0..24u64 {
        let mut g = Gen::new(0xbeef + case);
        let ops = random_ops(&mut g);
        let data = g.vec_i64(16, -50, 50);
        let banks = g.range(1, 5) as u32;
        let n = data.len() as i64;
        let (m, a, out) = random_loop_module(&ops, n);
        let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
        PassManager::new()
            .with(MemoryLocalization::default())
            .with(ScratchpadBanking { banks })
            .with(OpFusion::default())
            .run(&mut acc)
            .unwrap();

        let mut ref_mem = Memory::from_module(&m);
        ref_mem.init_i64(a, &data);
        Interp::new(&m).run_main(&mut ref_mem, &[]).unwrap();

        let mut sim_mem = Memory::from_module(&m);
        sim_mem.init_i64(a, &data);
        simulate(&acc, &mut sim_mem, &[], &SimConfig::default()).unwrap();
        assert_eq!(
            ref_mem.read_i64(out),
            sim_mem.read_i64(out),
            "case {case}: ops {ops:?} banks {banks}"
        );
    }
}

/// Predicated programs (if/else over a comparison) stay equivalent.
#[test]
fn predication_matches_interpreter() {
    for case in 0..16u64 {
        let mut g = Gen::new(0x97ed + case);
        let threshold = g.range(-20, 20);
        let data = g.vec_i64(16, -30, 30);
        let n = data.len() as i64;
        let mut m = Module::new("pred");
        let a = m.add_ro_mem_object("a", ScalarType::I32, n as u64);
        let out = m.add_mem_object("out", ScalarType::I32, n as u64);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(n), 1, move |b, i| {
            let v = b.load(a, i);
            let c = b.icmp(CmpPred::Lt, v, ValueRef::int(threshold));
            let r = b.if_val(
                c,
                &[Type::I64],
                |b| vec![b.mul(ValueRef::Instr(v.as_instr().unwrap()), ValueRef::int(2))],
                |b| vec![b.sub(ValueRef::Instr(v.as_instr().unwrap()), ValueRef::int(1))],
            );
            b.store(out, i, r[0]);
        });
        b.ret(None);
        m.add_function(b.finish());

        let acc = translate(&m, &FrontendConfig::default()).unwrap();
        let mut ref_mem = Memory::from_module(&m);
        ref_mem.init_i64(a, &data);
        Interp::new(&m).run_main(&mut ref_mem, &[]).unwrap();
        let mut sim_mem = Memory::from_module(&m);
        sim_mem.init_i64(a, &data);
        simulate(&acc, &mut sim_mem, &[], &SimConfig::default()).unwrap();
        assert_eq!(ref_mem.read_i64(out), sim_mem.read_i64(out), "case {case}");
    }
}

/// Reduction loops with a register accumulator.
#[test]
fn reductions_match_interpreter() {
    for case in 0..12u64 {
        let mut g = Gen::new(0xacc0 + case);
        let data = g.vec_i64(24, -40, 40);
        let init = g.range(-10, 10);
        let n = data.len() as i64;
        let mut m = Module::new("red");
        let a = m.add_ro_mem_object("a", ScalarType::I32, n as u64);
        let out = m.add_mem_object("out", ScalarType::I32, 1);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        let accs = b.for_loop_acc(
            ValueRef::int(0),
            ValueRef::int(n),
            1,
            &[(ValueRef::int(init), Type::I64)],
            |b, i, accs| {
                let _ = i;
                let v = b.load(a, i);
                vec![b.add(accs[0], v)]
            },
        );
        b.store(out, ValueRef::int(0), accs[0]);
        b.ret(None);
        m.add_function(b.finish());

        let acc_graph = translate(&m, &FrontendConfig::default()).unwrap();
        let expect: i64 = init + data.iter().sum::<i64>();
        let mut sim_mem = Memory::from_module(&m);
        sim_mem.init_i64(a, &data);
        simulate(&acc_graph, &mut sim_mem, &[], &SimConfig::default()).unwrap();
        assert_eq!(sim_mem.read_i64(out)[0], expect, "case {case}");

        // And with the accumulator re-timed into a FusedAcc unit.
        let mut fused = translate(&m, &FrontendConfig::default()).unwrap();
        PassManager::new()
            .with(OpFusion::default())
            .run(&mut fused)
            .unwrap();
        let mut sim_mem2 = Memory::from_module(&m);
        sim_mem2.init_i64(a, &data);
        simulate(&fused, &mut sim_mem2, &[], &SimConfig::default()).unwrap();
        assert_eq!(sim_mem2.read_i64(out)[0], expect, "case {case} (fused)");
    }
}

/// The affine analysis agrees with concrete address arithmetic:
/// `idx = i*scale + offset` is recognised with those exact constants.
#[test]
fn affine_analysis_matches_concrete() {
    use muir::mir::analysis::{affine_of, induction_var, natural_loops, Affine};
    for case in 0..16u64 {
        let mut g = Gen::new(0xaff1 + case);
        let scale = g.range(1, 8);
        let offset = g.range(0, 16);
        let mut m = Module::new("aff");
        let a = m.add_mem_object("a", ScalarType::I32, 256);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(8), 1, move |b, i| {
            let s = b.mul(i, ValueRef::int(scale));
            let idx = b.add(s, ValueRef::int(offset));
            b.store(a, idx, i);
        });
        b.ret(None);
        let f = b.finish();
        m.add_function(f);
        let f = m.main().unwrap();
        let loops = natural_loops(f);
        let iv = induction_var(f, &loops[0]).unwrap();
        let addr = f
            .instrs
            .iter()
            .find_map(|ins| match ins.op {
                muir::mir::instr::Op::Store { .. } => Some(ins.operands[0]),
                _ => None,
            })
            .unwrap();
        match affine_of(f, addr, iv, &loops[0]) {
            Affine::Affine {
                scale: s,
                konst,
                syms,
            } => {
                assert_eq!(s, scale, "case {case}");
                assert_eq!(konst, offset, "case {case}");
                assert!(syms.is_empty(), "case {case}");
            }
            Affine::Opaque => panic!("case {case}: expected affine form"),
        }
    }
}

/// Scratchpad model conservation: every submitted element is serviced
/// exactly once, regardless of banking.
#[test]
fn scratchpad_conserves_transactions() {
    use muir::core::structure::{Structure, StructureKind};
    use muir::sim::memory::{MemRequest, StructModel};
    for case in 0..16u64 {
        let mut g = Gen::new(0x5bad + case);
        let naddrs = g.range(1, 24) as usize;
        let addrs: Vec<u64> = (0..naddrs).map(|_| g.range(0, 64) as u64).collect();
        let banks = g.range(1, 5) as u32;
        let mut s = Structure::scratchpad("s", 64);
        if let StructureKind::Scratchpad { banks: b, .. } = &mut s.kind {
            *b = banks;
        }
        let mut model = StructModel::new(&s);
        for (i, &a) in addrs.iter().enumerate() {
            model.submit(MemRequest {
                id: i as u64 + 1,
                base: a,
                n: 1,
                is_write: false,
            });
        }
        let mut done = Vec::new();
        for c in 0..10_000 {
            for r in model.tick(c, None) {
                done.push(r.id);
            }
            if done.len() == addrs.len() {
                break;
            }
        }
        done.sort_unstable();
        let expect: Vec<u64> = (1..=addrs.len() as u64).collect();
        assert_eq!(done, expect, "case {case}");
        assert!(model.is_idle(), "case {case}");
    }
}

/// Single-fault robustness: dropping any one token on a ready/valid edge
/// either surfaces as a typed fault/hang or the run's outputs still match
/// the reference — and a completed-but-corrupted run always carries the
/// injected-fault flag in its stats. Silent wrong answers are impossible.
#[test]
fn single_token_drop_is_never_silent() {
    use muir::sim::{FaultClass, FaultPlan, SimError};
    for case in 0..16u64 {
        let mut g = Gen::new(0xd509 + case);
        let ops = random_ops(&mut g);
        let data = g.vec_i64(16, -100, 100);
        let n = data.len() as i64;
        let (m, a, out) = random_loop_module(&ops, n);
        let acc = translate(&m, &FrontendConfig::default()).unwrap();

        let mut ref_mem = Memory::from_module(&m);
        ref_mem.init_i64(a, &data);
        Interp::new(&m).run_main(&mut ref_mem, &[]).unwrap();

        let mut sim_mem = Memory::from_module(&m);
        sim_mem.init_i64(a, &data);
        let cfg = SimConfig {
            deadlock_cycles: 5_000,
            max_cycles: 2_000_000,
            faults: FaultPlan::single(FaultClass::TokenDrop, 0xfa17 + case),
            ..SimConfig::default()
        };
        match simulate(&acc, &mut sim_mem, &[], &cfg) {
            Err(SimError::Fault { .. })
            | Err(SimError::Deadlock { .. })
            | Err(SimError::CycleLimitExhausted { .. }) => {}
            Err(other) => panic!("case {case}: unexpected error class: {other}"),
            Ok(r) => {
                let matches = ref_mem.read_i64(out) == sim_mem.read_i64(out);
                assert!(
                    matches || r.stats.faults_injected() > 0,
                    "case {case}: ops {ops:?}: silent corruption without a fault flag"
                );
            }
        }
    }
}

/// Every scheduler computes the same thing: random loop programs run under
/// Dense, Ready, and Parallel (at 1/2/4/8 planning threads) must agree on
/// cycles, results, and memory — and all must match the interpreter.
#[test]
fn schedulers_agree_on_random_programs() {
    use muir::sim::SchedulerKind;
    for case in 0..12u64 {
        let mut g = Gen::new(0x3a11 + case);
        let ops = random_ops(&mut g);
        let data = g.vec_i64(16, -100, 100);
        let n = data.len() as i64;
        let (m, a, out) = random_loop_module(&ops, n);
        let acc = translate(&m, &FrontendConfig::default()).unwrap();

        let mut ref_mem = Memory::from_module(&m);
        ref_mem.init_i64(a, &data);
        Interp::new(&m).run_main(&mut ref_mem, &[]).unwrap();
        let expect = ref_mem.read_i64(out);

        let run = |scheduler: SchedulerKind, threads: u32| {
            let mut mem = Memory::from_module(&m);
            mem.init_i64(a, &data);
            let cfg = SimConfig::default()
                .with_scheduler(scheduler)
                .with_threads(threads);
            let r = simulate(&acc, &mut mem, &[], &cfg).unwrap();
            (r.cycles, r.stats.fires, mem.read_i64(out))
        };
        let dense = run(SchedulerKind::Dense, 1);
        assert_eq!(dense.2, expect, "case {case}: dense vs interpreter");
        assert_eq!(dense, run(SchedulerKind::Ready, 1), "case {case}: ready");
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                dense,
                run(SchedulerKind::Parallel, threads),
                "case {case}: parallel@{threads}"
            );
        }
    }
}
