//! Quickstart: the full μIR pipeline in ~60 lines.
//!
//! 1. Describe behaviour in the `mir` compiler IR (the LLVM/Tapir stand-in).
//! 2. Translate it to a baseline μIR accelerator graph.
//! 3. Measure it with the cycle-level simulator (verified against the
//!    reference interpreter).
//! 4. Transform the microarchitecture with a μopt pass and measure again.
//! 5. Lower to Chisel-like RTL.
//!
//! Run with: `cargo run --release --example quickstart`

use muir::frontend::{translate, FrontendConfig};
use muir::mir::builder::FunctionBuilder;
use muir::mir::instr::ValueRef;
use muir::mir::interp::{Interp, Memory};
use muir::mir::module::Module;
use muir::mir::types::ScalarType;
use muir::rtl::emit_chisel;
use muir::sim::{simulate, SimConfig};
use muir::uopt::passes::{MemoryLocalization, OpFusion};
use muir::uopt::PassManager;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Behaviour: y[i] = 3*x[i] + 1 over 256 elements.
    let mut module = Module::new("quickstart");
    let x = module.add_ro_mem_object("x", ScalarType::I32, 256);
    let y = module.add_mem_object("y", ScalarType::I32, 256);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&module);
    b.for_loop(0, ValueRef::int(256), 1, |b, i| {
        let v = b.load(x, i);
        let t = b.mul(v, ValueRef::int(3));
        let r = b.add(t, ValueRef::int(1));
        b.store(y, i, r);
    });
    b.ret(None);
    module.add_function(b.finish());

    // 2. Stage 1/2: derive the baseline accelerator microarchitecture.
    let mut acc = translate(&module, &FrontendConfig::default())?;
    println!(
        "baseline accelerator: {} task blocks, {} structures",
        acc.tasks.len(),
        acc.structures.len()
    );

    // 3. Simulate and verify against the interpreter.
    let mut ref_mem = Memory::from_module(&module);
    ref_mem.init_i64(x, &(0..256).collect::<Vec<_>>());
    Interp::new(&module).run_main(&mut ref_mem, &[])?;

    let mut mem = Memory::from_module(&module);
    mem.init_i64(x, &(0..256).collect::<Vec<_>>());
    let base = simulate(&acc, &mut mem, &[], &SimConfig::default())?;
    assert_eq!(
        ref_mem.read_i64(y),
        mem.read_i64(y),
        "accelerator must match software"
    );
    println!("baseline: {} cycles", base.cycles);

    // 4. Stage 2': transform the microarchitecture, not the program, then
    //    seal the result into an immutable content-addressed artifact the
    //    simulator, cost model, and RTL emitter all share.
    let (comp, report) = PassManager::new()
        .with(MemoryLocalization::default())
        .with(OpFusion::default())
        .seal(&mut acc)?;
    for (name, delta) in &report.deltas {
        println!(
            "pass {name}: touched {} nodes, {} edges",
            delta.nodes, delta.edges
        );
    }
    println!("sealed artifact {:016x}", comp.content_hash());
    let mut mem = Memory::from_module(&module);
    mem.init_i64(x, &(0..256).collect::<Vec<_>>());
    let opt = muir::sim::simulate_compiled(&comp, &mut mem, &[], &SimConfig::default())?;
    assert_eq!(ref_mem.read_i64(y), mem.read_i64(y));
    println!(
        "optimized: {} cycles ({:.2}x)",
        opt.cycles,
        base.cycles as f64 / opt.cycles as f64
    );

    // 5. Stage 3: lower to Chisel-like RTL from the same artifact.
    let rtl = emit_chisel(&comp);
    println!("\n--- generated RTL (first 25 lines) ---");
    for line in rtl.lines().take(25) {
        println!("{line}");
    }
    Ok(())
}
