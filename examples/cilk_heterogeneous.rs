//! The paper's running example (Figure 4): a Cilk parallel loop that spawns
//! a scalar multiply on even iterations and a 2×2 tensor multiply on odd
//! iterations — a *heterogeneous* parallel accelerator with two different
//! worker blocks.
//!
//! This walks the exact transformation sequence of Figure 8:
//! Pass 1 task queueing → Pass 2 execution tiling → Pass 3 local
//! scratchpads → Pass 4 banking → Pass 5 fusion, printing cycles after
//! each pass, and ends with the auto-generated Chisel (compare the paper's
//! Figure 4 listing) and the GraphViz dump.
//!
//! Run with: `cargo run --release --example cilk_heterogeneous`

use muir::core::stats::graph_stats;
use muir::frontend::{translate, FrontendConfig};
use muir::mir::builder::FunctionBuilder;
use muir::mir::instr::{CmpPred, TensorOp, ValueRef};
use muir::mir::interp::{Interp, Memory};
use muir::mir::module::Module;
use muir::mir::types::{ScalarType, TensorShape};
use muir::rtl::emit_chisel;
use muir::sim::{simulate, SimConfig};
use muir::uopt::passes::{
    ExecutionTiling, MemoryLocalization, OpFusion, ScratchpadBanking, TaskQueueing,
};
use muir::uopt::{Pass, PassManager};

const N: i64 = 128;

fn build() -> Module {
    let shape = TensorShape::new(2, 2);
    let mut m = Module::new("cilk_hetero");
    // Scalar operands (N/2 each) and tile-major tensor operands (N/2 tiles).
    let left = m.add_ro_mem_object("left", ScalarType::I32, (N / 2) as u64);
    let right = m.add_ro_mem_object("right", ScalarType::I32, (N / 2) as u64);
    let result = m.add_mem_object("result", ScalarType::I32, (N / 2) as u64);
    let left2d = m.add_ro_mem_object("left2D", ScalarType::F32, (N / 2 * 4) as u64);
    let right2d = m.add_ro_mem_object("right2D", ScalarType::F32, (N / 2 * 4) as u64);
    let result2d = m.add_mem_object("result2D", ScalarType::F32, (N / 2 * 4) as u64);

    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.par_for(0, N, 1, |b, i| {
        let half = b.div(i, ValueRef::int(2));
        let parity = b.rem(i, ValueRef::int(2));
        let is_even = b.icmp(CmpPred::Eq, parity, ValueRef::int(0));
        b.if_then(is_even, |b| {
            // Uint32 multiply (the paper's even iterations).
            let l = b.load(left, half);
            let r = b.load(right, half);
            let p = b.mul(l, r);
            b.store(result, half, p);
        });
        let is_odd = b.icmp(CmpPred::Eq, parity, ValueRef::int(1));
        b.if_then(is_odd, |b| {
            // 2D tensor multiply (the odd iterations).
            let off = b.mul(half, ValueRef::int(4));
            let lt = b.load_tile(left2d, off, TensorShape::new(2, 2));
            let rt = b.load_tile(right2d, off, TensorShape::new(2, 2));
            let p = b.tensor2(TensorOp::MatMul, TensorShape::new(2, 2), lt, rt);
            b.store(result2d, off, p);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let _ = shape;
    m
}

fn run(m: &Module, acc: &muir::core::Accelerator) -> u64 {
    let mut mem = Memory::from_module(m);
    init(m, &mut mem);
    let r = simulate(acc, &mut mem, &[], &SimConfig::default()).expect("simulate");
    // Verify against software.
    let mut ref_mem = Memory::from_module(m);
    init(m, &mut ref_mem);
    Interp::new(m).run_main(&mut ref_mem, &[]).expect("interp");
    assert_eq!(ref_mem.objects, mem.objects, "hardware must match software");
    r.cycles
}

fn init(m: &Module, mem: &mut Memory) {
    use muir::mir::instr::MemObjId;
    let n = (N / 2) as usize;
    mem.init_i64(MemObjId(0), &(1..=n as i64).collect::<Vec<_>>());
    mem.init_i64(
        MemObjId(1),
        &(0..n as i64).map(|x| x % 9 + 1).collect::<Vec<_>>(),
    );
    let f: Vec<f32> = (0..n * 4).map(|k| (k % 13) as f32 * 0.25).collect();
    mem.init_f32(MemObjId(3), &f);
    mem.init_f32(MemObjId(4), &f);
    let _ = m;
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = build();
    let mut acc = translate(&m, &FrontendConfig::default())?;
    let s = graph_stats(&acc);
    println!(
        "Figure 4 accelerator: {} task blocks, {} nodes, {} edges, pipeline depth {}",
        s.tasks, s.nodes, s.edges, s.pipeline_depth
    );
    let mut cycles = run(&m, &acc);
    println!("{:<28} {:>8} cycles", "baseline", cycles);

    // Figure 8's pass sequence, one at a time.
    let passes: Vec<(&str, Box<dyn Pass>)> = vec![
        ("pass 1: task queueing", Box::new(TaskQueueing::all(8))),
        (
            "pass 2: execution tiling x4",
            Box::new(ExecutionTiling::spawned(4)),
        ),
        (
            "pass 3: local scratchpads",
            Box::new(MemoryLocalization::default()),
        ),
        (
            "pass 4: scratchpad banking",
            Box::new(ScratchpadBanking { banks: 4 }),
        ),
        ("pass 5: fusion + re-timing", Box::new(OpFusion::default())),
    ];
    for (label, pass) in passes {
        let mut pm = PassManager::new();
        pm.push(pass);
        pm.run(&mut acc)?;
        let c = run(&m, &acc);
        println!(
            "{label:<28} {c:>8} cycles ({:.2}x)",
            cycles as f64 / c as f64
        );
        cycles = c;
    }

    println!("\n--- auto-generated Chisel (top level) ---");
    let comp = muir::core::CompiledAccel::compile_cached(&acc)?;
    let rtl = emit_chisel(&comp);
    let top = rtl.find("class Accelerator").unwrap_or(0);
    for line in rtl[top..].lines().take(30) {
        println!("{line}");
    }
    println!("\n(GraphViz available via muir::core::dot::to_dot)");
    Ok(())
}
