//! The paper's Figure 2 walk: one 1-D convolution behaviour, many
//! microarchitectures.
//!
//! The same `output[i] = Σ_j input[i+j]·weight[j]` behaviour is lowered to
//! a baseline accelerator and then iteratively transformed:
//!
//! * **Opt 1 — Locality**: hierarchical buffers via memory localization.
//! * **Opt 2 — Higher concurrency**: replicated execution units (tiling).
//! * **Opt 3 — Dataflow pipelining**: op-fusion / pipeline re-timing.
//! * **Opt 4 — Higher-order ops**: the window dot-product as a tensor
//!   `Conv` unit.
//!
//! Every variant computes the same outputs (checked against the reference
//! interpreter); only the cycle count and area change.
//!
//! Run with: `cargo run --release --example conv1d_design_space`

use muir::core::accel::Accelerator;
use muir::frontend::{translate, FrontendConfig};
use muir::mir::builder::FunctionBuilder;
use muir::mir::instr::{TensorOp, ValueRef};
use muir::mir::interp::{Interp, Memory};
use muir::mir::module::Module;
use muir::mir::types::{ScalarType, TensorShape, Type};
use muir::rtl::cost::{estimate, Tech};
use muir::sim::SimConfig;
use muir::uopt::passes::{ExecutionTiling, MemoryLocalization, OpFusion, TaskFilter};
use muir::uopt::PassManager;

const M: i64 = 256;
const W: i64 = 4;

/// The scalar 1-D convolution of Figure 2.
fn conv1d_scalar() -> (
    Module,
    muir::mir::instr::MemObjId,
    muir::mir::instr::MemObjId,
) {
    let mut m = Module::new("conv1d");
    let input = m.add_ro_mem_object("input", ScalarType::F32, (M + W) as u64);
    let weight = m.add_ro_mem_object("weight", ScalarType::F32, W as u64);
    let output = m.add_mem_object("output", ScalarType::F32, M as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(M), 1, |b, i| {
        let acc = b.for_loop_acc(
            ValueRef::int(0),
            ValueRef::int(W),
            1,
            &[(ValueRef::f32(0.0), Type::F32)],
            |b, j, accs| {
                let idx = b.add(i, j);
                let v = b.load(input, idx);
                let wv = b.load(weight, j);
                let p = b.fmul(v, wv);
                vec![b.fadd(accs[0], p)]
            },
        );
        b.store(output, i, acc[0]);
    });
    b.ret(None);
    m.add_function(b.finish());
    (m, input, output)
}

/// The same convolution with the W=4 window as a tensor `Conv` unit
/// (Figure 2's "Opt 4 — Higher-Order Ops").
fn conv1d_tensor() -> (
    Module,
    muir::mir::instr::MemObjId,
    muir::mir::instr::MemObjId,
) {
    let shape = TensorShape::new(2, 2); // four consecutive elements
    let mut m = Module::new("conv1d_t");
    let input = m.add_ro_mem_object("input", ScalarType::F32, (M + W) as u64);
    let weight = m.add_ro_mem_object("weight", ScalarType::F32, W as u64);
    let output = m.add_mem_object("output", ScalarType::F32, M as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(M), 1, |b, i| {
        let win = b.load_tile(input, i, shape);
        let wt = b.load_tile(weight, ValueRef::int(0), shape);
        let dot = b.tensor2(TensorOp::Conv, shape, win, wt);
        b.store(output, i, dot);
    });
    b.ret(None);
    m.add_function(b.finish());
    (m, input, output)
}

fn measure(
    label: &str,
    m: &Module,
    input: muir::mir::instr::MemObjId,
    output: muir::mir::instr::MemObjId,
    acc: &Accelerator,
) -> u64 {
    let data: Vec<f32> = (0..(M + W) as usize)
        .map(|k| (k as f32 * 0.37).sin())
        .collect();
    let mut ref_mem = Memory::from_module(m);
    ref_mem.init_f32(input, &data);
    Interp::new(m).run_main(&mut ref_mem, &[]).expect("interp");
    let mut mem = Memory::from_module(m);
    mem.init_f32(input, &data);
    // Seal once; the simulator and cost model share the artifact.
    let comp = muir::core::CompiledAccel::compile_cached(acc).expect("verifies");
    let r = muir::sim::simulate_compiled(&comp, &mut mem, &[], &SimConfig::default())
        .expect("simulate");
    let got = mem.read_f32(output);
    let want = ref_mem.read_f32(output);
    for (k, (a, b)) in got.iter().zip(&want).enumerate() {
        assert!((a - b).abs() < 1e-4, "{label}: output[{k}] {a} vs {b}");
    }
    let cost = estimate(&comp, Tech::FpgaArria10);
    println!(
        "{label:<38} {:>8} cycles  {:>4.0} MHz  {:>6} ALMs  {:>3} DSPs",
        r.cycles, cost.fmax_mhz, cost.alms, cost.dsps
    );
    r.cycles
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("1-D convolution design space (Figure 2), M = {M}, W = {W}\n");
    let cfg = FrontendConfig::default();

    let (m, input, output) = conv1d_scalar();
    let acc = translate(&m, &cfg)?;
    let base = measure("baseline (shared buffers)", &m, input, output, &acc);

    let mut a1 = acc.clone();
    PassManager::new()
        .with(MemoryLocalization::default())
        .run(&mut a1)?;
    measure("opt 1: locality (local buffers)", &m, input, output, &a1);

    let mut a2 = a1.clone();
    PassManager::new()
        .with(ExecutionTiling {
            tiles: 4,
            filter: TaskFilter::LeafLoops,
        })
        .run(&mut a2)?;
    measure("opt 2: concurrency (4 exec units)", &m, input, output, &a2);

    let mut a3 = a2.clone();
    PassManager::new().with(OpFusion::default()).run(&mut a3)?;
    let piped = measure(
        "opt 3: dataflow pipelining (fusion)",
        &m,
        input,
        output,
        &a3,
    );

    let (mt, it, ot) = conv1d_tensor();
    let mut a4 = translate(&mt, &cfg)?;
    PassManager::new()
        .with(MemoryLocalization::default())
        .with(OpFusion::default())
        .run(&mut a4)?;
    let tensor = measure("opt 4: higher-order Conv unit", &mt, it, ot, &a4);

    println!(
        "\nbaseline -> best scalar: {:.2}x; tensor unit: {:.2}x",
        base as f64 / piped as f64,
        base as f64 / tensor as f64
    );
    Ok(())
}
