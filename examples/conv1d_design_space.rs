//! The paper's Figure 2 walk, driven automatically: one convolution
//! behaviour, many microarchitectures.
//!
//! Earlier revisions of this example applied Figure 2's four
//! optimizations by hand (locality, concurrency, pipelining, higher-order
//! ops). The μopt design-space driver (`muir_bench::dse`, ROADMAP item 3)
//! now does the same walk mechanically: it samples the enumerable knob
//! surface — task-queue depths, execution tiles, localization, banking
//! factors, fusion periods — around the fixed higher-order-Conv behaviour
//! (the suite's `CONV[T]` workload), evaluates every candidate through
//! the eval service, and reports the cycles-vs-area Pareto front.
//!
//! The sweep is pinned (`CONV1D_SEED`/`CONV1D_BUDGET`): the regression
//! test in `crates/bench/tests/dse.rs` asserts this exact 10-point front,
//! so the printout below is reproducible to the cycle.
//!
//! Run with: `cargo run --release --example conv1d_design_space`

use muir::bench::dse::{conv1d_sweep, CONV1D_BUDGET, CONV1D_SEED, CONV1D_WORKLOAD};

fn main() {
    println!(
        "conv1d design space (Figure 2, automated): workload {CONV1D_WORKLOAD}, \
         seed {CONV1D_SEED:#x}, budget {CONV1D_BUDGET}\n"
    );
    let (front, stats) = conv1d_sweep(1);
    println!(
        "{:>5}  {:<34} {:>8} {:>10}  front",
        "idx", "config", "cycles", "area"
    );
    for c in &front.candidates {
        println!(
            "{:>5}  {:<34} {:>8} {:>10}  {}",
            c.index,
            c.config.to_string(),
            c.cycles,
            c.area_score,
            if c.dominated { "" } else { "*" }
        );
    }
    println!(
        "\n{} candidates -> {} distinct artifacts ({} coalesced); \
         Pareto front ({} points):",
        stats.candidates,
        stats.artifacts,
        stats.coalesced,
        front.front.len()
    );
    for (cycles, area) in &front.front {
        println!("  {cycles:>8} cycles @ area {area}");
    }
    let base = front
        .candidates
        .iter()
        .find(|c| c.index == 0)
        .expect("baseline is always sampled");
    let best = front.front.first().expect("non-empty front");
    println!(
        "\nbaseline {} cycles -> best {} cycles ({:.2}x)",
        base.cycles,
        best.0,
        base.cycles as f64 / best.0 as f64
    );
}
