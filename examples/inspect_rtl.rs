//! Inspect any paper benchmark's generated artefacts: the μIR graph
//! statistics, the Chisel-like RTL, the FIRRTL-like circuit size, the
//! synthesis estimate, and the GraphViz dump.
//!
//! Run with: `cargo run --release --example inspect_rtl -- GEMM`
//! (defaults to SAXPY; `--dot` prints the GraphViz source instead).

use muir::core::dot::to_dot;
use muir::core::stats::graph_stats;
use muir::frontend::{translate, FrontendConfig};
use muir::rtl::circuit::lower_to_circuit;
use muir::rtl::cost::{estimate, Tech};
use muir::rtl::emit_chisel;
use muir::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_dot = args.iter().any(|a| a == "--dot");
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "SAXPY".to_string());
    let w = workloads::by_name(&name)
        .ok_or_else(|| format!("unknown workload `{name}`; try GEMM, FFT, 2MM[T], ..."))?;
    let acc = translate(&w.module, &FrontendConfig::default())?;

    if want_dot {
        println!("{}", to_dot(&acc));
        return Ok(());
    }

    let s = graph_stats(&acc);
    println!("workload {name}:");
    println!(
        "  muIR graph: {} tasks, {} nodes, {} edges, {} junctions, depth {}",
        s.tasks, s.nodes, s.edges, s.junctions, s.pipeline_depth
    );
    let circ = lower_to_circuit(&acc);
    println!(
        "  FIRRTL-level circuit: {} cells + {} wires = {} elements ({:.1}x the muIR graph)",
        circ.cell_count(),
        circ.wires,
        circ.total_elements(),
        circ.total_elements() as f64 / s.total_elements() as f64
    );
    let comp = muir::core::CompiledAccel::compile_cached(&acc).expect("workloads verify");
    let f = estimate(&comp, Tech::FpgaArria10);
    let a = estimate(&comp, Tech::Asic28);
    println!(
        "  FPGA: {:.0} MHz, {:.0} mW, {} ALMs, {} regs, {} DSPs",
        f.fmax_mhz, f.power_mw, f.alms, f.regs, f.dsps
    );
    println!(
        "  ASIC: {:.2} GHz, {:.0} mW, {:.2} mm2",
        a.fmax_mhz / 1000.0,
        a.power_mw,
        a.area_mm2
    );
    println!("\n--- Chisel (first 40 lines) ---");
    for line in emit_chisel(&comp).lines().take(40) {
        println!("{line}");
    }
    Ok(())
}
