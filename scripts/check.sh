#!/bin/sh
# Repo hygiene gate: formatting, lints on the simulator crate, and the
# tier-1 test suite. Each stage is skipped (not failed) when its tool is
# missing, so the script works in minimal containers.
set -eu

cd "$(dirname "$0")/.."

if command -v cargo >/dev/null 2>&1 && cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --all --check
else
    echo "== cargo fmt not available; skipped =="
fi

if command -v cargo >/dev/null 2>&1 && cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy -p muir-sim (warnings are errors) =="
    cargo clippy -p muir-sim --all-targets -- -D warnings
else
    echo "== cargo clippy not available; skipped =="
fi

echo "== tier-1 tests =="
cargo test -q

echo "check.sh: OK"
