#!/bin/sh
# Repo hygiene gate: formatting, lints on the simulator/transform/bench
# crates, the tier-1 test suite, and the trace-exporter schema gate. Each
# tool-dependent stage is skipped (not failed) when its tool is missing,
# so the script works in minimal containers.
set -eu

cd "$(dirname "$0")/.."

if command -v cargo >/dev/null 2>&1 && cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --all --check
else
    echo "== cargo fmt not available; skipped =="
fi

if command -v cargo >/dev/null 2>&1 && cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy -p muir-sim (warnings are errors) =="
    cargo clippy -p muir-sim --all-targets -- -D warnings
    echo "== cargo clippy -p muir-uopt (warnings are errors) =="
    cargo clippy -p muir-uopt --all-targets -- -D warnings
    echo "== cargo clippy -p muir-bench (warnings are errors) =="
    cargo clippy -p muir-bench --all-targets -- -D warnings
else
    echo "== cargo clippy not available; skipped =="
fi

echo "== tier-1 tests =="
cargo test -q

echo "== trace exporter vs scripts/trace_schema.json =="
cargo run -q -p muir-bench --bin experiments -- trace-schema scripts/trace_schema.json

echo "check.sh: OK"
