#!/bin/sh
# Repo hygiene gate: formatting, lints on every workspace crate, the
# tier-1 test suite, the trace-exporter schema gate, the sealed-artifact
# determinism gate (compile twice -> identical content hash; no-op pass
# pipeline -> hash unchanged), the store determinism gate (cold/warm/
# post-fault over the full workload suite), the storage fault campaign
# (4 injected fault classes x plain/sim-faulted differential), the
# seeded graph-fuzz smoke (30 graphs, every scheduler x exec mode at
# 1/2/4/8 threads), the tensor-lowering differential gate (text-parsed
# vs API-built GEMM/CONV-shaped graphs bit-identical in cycles and
# end-state hash, numerics matching the hand-built workloads), the
# tensor-graph fuzz smoke (seeded frontend graphs through parse ->
# lower -> seal -> sim), the micro-op differential + epoch-commit
# engagement gate (Dense+Interp oracle vs MicroOp under every
# scheduler; epoch commit must actually engage at 2 threads), the
# scheduler benchmark gate (four-way differential @2 threads +
# BENCH_sim.json), the telemetry
# zero-perturbation guard (metrics on vs off bit-identical on every
# workload), and the metrics gate (one instrumented GEMM capture whose
# merged trace and registry snapshot must validate against
# scripts/trace_schema.json and scripts/metrics_schema.json), and the
# DSE smoke gate (a 2-workload seeded sweep through the eval service,
# run cold@1-thread then warm@2-threads over one store: the reports
# must validate against scripts/dse_schema.json and byte-match). Each
# tool-dependent stage is skipped (not failed) when its tool is
# missing, so the script works in minimal containers.
set -eu

cd "$(dirname "$0")/.."

if command -v cargo >/dev/null 2>&1 && cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --all --check
else
    echo "== cargo fmt not available; skipped =="
fi

if command -v cargo >/dev/null 2>&1 && cargo clippy --version >/dev/null 2>&1; then
    for crate in muir-core muir-mir muir-frontend muir-sim muir-uopt muir-rtl muir-workloads muir-store muir-bench; do
        echo "== cargo clippy -p $crate (warnings are errors) =="
        cargo clippy -p "$crate" --all-targets -- -D warnings
    done
else
    echo "== cargo clippy not available; skipped =="
fi

echo "== tier-1 tests =="
cargo test -q

echo "== trace exporter vs scripts/trace_schema.json =="
cargo run -q -p muir-bench --bin experiments -- trace-schema scripts/trace_schema.json

echo "== artifact determinism (compile twice + no-op pipeline, all workloads) =="
cargo run -q -p muir-bench --bin experiments -- compile-stats

echo "== store determinism gate (cold/warm/post-fault, all workloads) =="
cargo run --release -q -p muir-bench --bin experiments -- serve target/store-check

echo "== storage fault campaign (4 classes x plain/sim-faulted) =="
cargo run --release -q -p muir-bench --bin experiments -- store-campaign target/store-campaign-check

echo "== graph-fuzz smoke (30 seeded graphs, all schedulers x exec modes) =="
cargo run --release -q -p muir-bench --bin experiments -- fuzz --graphs 30 --seed 0xc1

echo "== tensor-lowering differential gate (frontend vs hand-built GEMM/CONV) =="
cargo run --release -q -p muir-bench --bin experiments -- tensor --gate

echo "== tensor-graph fuzz smoke (10 seeded graphs through the frontend) =="
cargo run --release -q -p muir-bench --bin experiments -- fuzz --tensor --graphs 10 --seed 0x7e50

echo "== micro-op differential + epoch-commit engagement @2 threads =="
cargo test --release -q -p muir-sim --lib epoch_commit_engages_at_two_threads
cargo test --release -q -p muir-sim --lib uop

echo "== scheduler bench gate (four-way differential @2 threads + BENCH_sim.json) =="
cargo run --release -q -p muir-bench --bin experiments -- bench --quick BENCH_sim.json

echo "== telemetry zero-perturbation guard (metrics on == off, all workloads) =="
cargo test --release -q -p muir-bench --test telemetry

echo "== metrics gate (merged trace + snapshot vs scripts/*_schema.json) =="
cargo run --release -q -p muir-bench --bin experiments -- metrics GEMM target/metrics-check

echo "== dse smoke gate (2 workloads, determinism across threads + warm store, schema) =="
rm -rf target/dse-check
cargo run --release -q -p muir-bench --bin experiments -- dse \
    --workload "RELU[T]" --workload "CONV[T]" --budget 8 --threads 1 \
    --store target/dse-check/store --out target/dse-check/cold.json
cargo run --release -q -p muir-bench --bin experiments -- dse \
    --workload "RELU[T]" --workload "CONV[T]" --budget 8 --threads 2 \
    --store target/dse-check/store --out target/dse-check/warm.json
cmp target/dse-check/cold.json target/dse-check/warm.json
echo "dse reports byte-identical across threads 1/2 and cold/warm store"

echo "check.sh: OK"
