//! `muir` — facade crate re-exporting the full μIR toolchain.
//!
//! This is a from-scratch Rust reproduction of
//! *μIR — An intermediate representation for transforming and optimizing the
//! microarchitecture of application accelerators* (MICRO-52, 2019).
//!
//! The pipeline mirrors the paper's Figure 3:
//!
//! 1. **Stage 1** — express behaviour in the [`mir`] compiler IR (the
//!    LLVM/Tapir stand-in) and translate it to a μIR accelerator graph with
//!    [`frontend`].
//! 2. **Stage 2** — transform the microarchitecture with [`uopt`] passes
//!    (task queueing, execution tiling, memory localization, banking, op
//!    fusion, tensor higher-order ops).
//! 3. **Stage 3** — lower to Chisel-like RTL with [`rtl`], estimate
//!    frequency/area/power, and measure cycle-level performance with the
//!    latency-insensitive [`sim`]ulator.
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through.

pub use muir_baselines as baselines;
pub use muir_bench as bench;
pub use muir_core as core;
pub use muir_frontend as frontend;
pub use muir_mir as mir;
pub use muir_rtl as rtl;
pub use muir_sim as sim;
pub use muir_uopt as uopt;
pub use muir_workloads as workloads;
